"""Registry totality fixes: empty-histogram percentiles, counter merging."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import EventDispatcher, MetricsRegistry


class TestEmptyHistogramPercentiles:
    def test_quantile_of_empty_histogram_is_none(self):
        # Regression: an empty histogram used to report its binning
        # range's lower bound as every percentile — a configuration
        # artifact masquerading as an observation.
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", low=5.0, high=100.0)
        assert histogram.quantile(0.5) is None
        assert histogram.quantile(0.99) is None

    def test_registry_percentile_is_total(self):
        registry = MetricsRegistry()
        registry.histogram("latency", low=0.0, high=10.0)
        assert registry.percentile("latency", 0.5) is None  # empty
        assert registry.percentile("no-such-metric", 0.5) is None

    def test_percentiles_appear_once_observed(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", low=0.0, high=10.0)
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        quantile = registry.percentile("latency", 0.5)
        assert quantile is not None
        assert 0.0 < quantile < 10.0

    def test_empty_summary_omits_percentile_keys(self):
        registry = MetricsRegistry()
        registry.histogram("latency", low=5.0, high=100.0)
        snapshot = registry.snapshot()
        assert snapshot["latency.count"] == 0.0
        assert "latency.p50" not in snapshot
        assert "latency.p95" not in snapshot

    def test_populated_summary_keeps_percentile_keys(self):
        registry = MetricsRegistry()
        registry.histogram("latency", low=0.0, high=10.0).observe(4.0)
        snapshot = registry.snapshot()
        assert "latency.p50" in snapshot and "latency.p99" in snapshot


class TestCounterMerge:
    def test_merge_counters_sums_worker_deltas(self):
        parent = MetricsRegistry()
        parent.counter("protocol.hits").inc(10)
        worker_a = MetricsRegistry()
        worker_a.counter("protocol.hits").inc(5)
        worker_a.counter("protocol.misses").inc(2)
        worker_b = MetricsRegistry()
        worker_b.counter("protocol.hits").inc(1)
        parent.merge_counters(worker_a.counter_values())
        parent.merge_counters(worker_b.counter_values())
        assert parent.counter_values() == {"protocol.hits": 16,
                                           "protocol.misses": 2}

    def test_merge_is_order_independent(self):
        deltas = [{"a": 1, "b": 2}, {"a": 3}, {"b": 4}]
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for delta in deltas:
            forward.merge_counters(delta)
        for delta in reversed(deltas):
            backward.merge_counters(delta)
        assert forward.counter_values() == backward.counter_values()

    def test_merge_rejects_negative_deltas(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.merge_counters({"x": -1})


class TestDispatcherMetricsSlot:
    def test_dispatcher_carries_optional_registry(self):
        dispatcher = EventDispatcher()
        assert dispatcher.metrics is None
        dispatcher.metrics = MetricsRegistry()
        dispatcher.metrics.counter("x").inc()
        assert dispatcher.metrics.counter_values() == {"x": 1}


class TestHistogramRelay:
    def _observed(self, registry, name, values):
        histogram = registry.histogram(name, low=0.0, high=10.0, bins=20)
        for value in values:
            histogram.observe(value)
        return histogram

    def test_histogram_get_or_fetch_same_binning(self):
        registry = MetricsRegistry()
        first = registry.histogram("latency", low=0.0, high=10.0)
        assert registry.histogram("latency", low=0.0, high=10.0) is first

    def test_histogram_rebinning_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("latency", low=0.0, high=10.0)
        with pytest.raises(ConfigurationError):
            registry.histogram("latency", low=0.0, high=20.0)

    def test_merge_histograms_sums_worker_state(self):
        parent, worker_a, worker_b = (MetricsRegistry() for _ in range(3))
        self._observed(worker_a, "latency", [1.0, 2.0, 3.0])
        self._observed(worker_b, "latency", [4.0, 5.0])
        parent.merge_histograms(worker_a.histogram_values())
        parent.merge_histograms(worker_b.histogram_values())
        merged = parent.histogram("latency", low=0.0, high=10.0, bins=20)
        assert merged.count == 5
        assert merged.mean == pytest.approx(3.0)
        # Bin counts merge exactly, so quantiles equal a sequential fold.
        sequential = MetricsRegistry()
        self._observed(sequential, "latency", [1.0, 2.0, 3.0, 4.0, 5.0])
        for q in (0.5, 0.95, 0.99):
            assert merged.quantile(q) == \
                sequential.histogram("latency", 0.0, 10.0, 20).quantile(q)

    def test_merge_into_populated_parent(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        self._observed(parent, "latency", [1.0])
        self._observed(worker, "latency", [9.0])
        parent.merge_histograms(worker.histogram_values())
        merged = parent.histogram("latency", low=0.0, high=10.0, bins=20)
        assert merged.count == 2
        assert merged.mean == pytest.approx(5.0)

    def test_merge_rejects_binning_mismatch(self):
        parent, worker = MetricsRegistry(), MetricsRegistry()
        parent.histogram("latency", low=0.0, high=10.0, bins=20)
        worker.histogram("latency", low=0.0, high=10.0, bins=40)
        with pytest.raises(ConfigurationError):
            parent.merge_histograms(worker.histogram_values())

    def test_state_survives_json_round_trip(self):
        import json
        worker, parent = MetricsRegistry(), MetricsRegistry()
        self._observed(worker, "latency", [2.5, 7.5])
        relayed = json.loads(json.dumps(worker.histogram_values()))
        parent.merge_histograms(relayed)
        assert parent.histogram("latency", 0.0, 10.0, 20).count == 2

    def test_gauges_are_not_relayed(self):
        worker = MetricsRegistry()
        worker.gauge("live", lambda: 42.0)
        assert worker.histogram_values() == {}
        assert worker.counter_values() == {}
