"""Span tracing: hierarchy, relay/absorb, Chrome export, ambient slot."""

import json

import pytest

from repro.obs import Span, Tracer, write_chrome_trace
from repro.obs import trace as obs_trace


class TestSpanRecording:
    def test_nesting_follows_with_blocks(self):
        tracer = Tracer()
        with tracer.span("sweep") as outer:
            with tracer.span("cell") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Completed in close order: inner first.
        assert [span.name for span in tracer.spans] == ["cell", "sweep"]

    def test_span_measures_wall_and_cpu_time(self):
        tracer = Tracer()
        with tracer.span("work"):
            sum(range(10_000))
        span = tracer.spans[0]
        assert span.duration_us >= 0
        assert span.cpu_us >= 0
        assert span.end_us == span.start_us + span.duration_us

    def test_span_args_are_live_while_open(self):
        tracer = Tracer()
        with tracer.span("cell", capacity=10) as span:
            span.args["hit_ratio"] = 0.5
        assert tracer.spans[0].args == {"capacity": 10, "hit_ratio": 0.5}

    def test_record_parents_under_open_span(self):
        tracer = Tracer()
        with tracer.span("simulate") as parent:
            synthetic = tracer.record("policy-hook", start_us=parent.start_us,
                                      duration_us=5, calls=3)
        assert synthetic.parent_id == parent.span_id
        assert synthetic.args["calls"] == 3

    def test_ids_are_unique(self):
        tracer = Tracer()
        for _ in range(5):
            with tracer.span("x"):
                pass
        ids = [span.span_id for span in tracer.spans]
        assert len(set(ids)) == len(ids)

    def test_find_and_children_of(self):
        tracer = Tracer()
        with tracer.span("sweep") as sweep:
            with tracer.span("cell"):
                pass
            with tracer.span("cell"):
                pass
        assert len(tracer.find("cell")) == 2
        assert len(tracer.children_of(sweep.span_id)) == 2


class TestSerializeAbsorb:
    def _worker_payload(self):
        worker = Tracer()
        with worker.span("simulate", policy="LRU-2"):
            with worker.span("warmup"):
                pass
            with worker.span("measure"):
                pass
        return worker.serialize()

    def test_roundtrip_through_dicts(self):
        payload = self._worker_payload()
        for record in payload:
            clone = Span.from_dict(record)
            assert clone.to_dict() == record

    def test_absorb_reparents_worker_roots_under_cell(self):
        payload = self._worker_payload()
        parent = Tracer()
        with parent.span("sweep"):
            cell = parent.record("cell", start_us=0, duration_us=1)
            adopted = parent.absorb(payload, parent_id=cell.span_id)
        roots = [span for span in adopted if span.name == "simulate"]
        assert len(roots) == 1
        assert roots[0].parent_id == cell.span_id

    def test_absorb_renumbers_but_preserves_internal_links(self):
        payload = self._worker_payload()
        parent = Tracer()
        with parent.span("occupies-id-1"):
            pass
        adopted = parent.absorb(payload)
        by_name = {span.name: span for span in adopted}
        assert (by_name["warmup"].parent_id
                == by_name["simulate"].span_id)
        assert (by_name["measure"].parent_id
                == by_name["simulate"].span_id)
        # No collision with the parent's own ids.
        parent_ids = {span.span_id for span in parent.spans}
        assert len(parent_ids) == len(parent.spans)

    def test_absorb_keeps_worker_pid(self):
        payload = self._worker_payload()
        for record in payload:
            record["pid"] = 99999  # pretend another process recorded it
        parent = Tracer()
        adopted = parent.absorb(payload)
        assert all(span.pid == 99999 for span in adopted)


class TestChromeExport:
    def test_export_shape(self, tmp_path):
        tracer = Tracer()
        with tracer.span("sweep"):
            with tracer.span("cell", capacity=20):
                pass
        path = tmp_path / "trace.json"
        write_chrome_trace(str(path), tracer)
        trace = json.loads(path.read_text())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        events = trace["traceEvents"]
        phases = {event["ph"] for event in events}
        assert phases == {"M", "X"}
        spans = [event for event in events if event["ph"] == "X"]
        assert {event["name"] for event in spans} == {"sweep", "cell"}
        for event in spans:
            assert event["ts"] >= 0
            assert "span_id" in event["args"]
        metadata = [event for event in events if event["ph"] == "M"]
        assert metadata[0]["name"] == "process_name"

    def test_timestamps_normalized_to_earliest_span(self):
        tracer = Tracer()
        tracer.record("late", start_us=1_000_100, duration_us=10)
        tracer.record("early", start_us=1_000_000, duration_us=10)
        events = [event for event in tracer.to_chrome()["traceEvents"]
                  if event["ph"] == "X"]
        ts = {event["name"]: event["ts"] for event in events}
        assert ts == {"early": 0, "late": 100}

    def test_worker_pids_get_their_own_track_labels(self):
        tracer = Tracer()
        tracer.record("cell", start_us=0, duration_us=5, pid=4242)
        labels = {event["args"]["name"]
                  for event in tracer.to_chrome()["traceEvents"]
                  if event["ph"] == "M"}
        assert "worker-4242" in labels


class TestAmbientTracer:
    def test_maybe_span_is_noop_without_tracer(self):
        assert obs_trace.current() is None
        with obs_trace.maybe_span("anything") as span:
            assert span is None

    def test_activate_scopes_and_restores(self):
        tracer = Tracer()
        with obs_trace.activate(tracer):
            assert obs_trace.current() is tracer
            with obs_trace.maybe_span("cell") as span:
                assert span is not None
        assert obs_trace.current() is None
        assert [span.name for span in tracer.spans] == ["cell"]

    def test_deactivate_clears_unconditionally(self):
        tracer = Tracer()
        with obs_trace.activate(tracer):
            obs_trace.deactivate()
            assert obs_trace.current() is None
            with obs_trace.maybe_span("dropped") as span:
                assert span is None
        assert tracer.spans == []

    def test_profile_hooks_flag_defaults_on(self):
        assert Tracer().profile_hooks is True
        assert Tracer(profile_hooks=False).profile_hooks is False
