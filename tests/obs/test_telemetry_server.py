"""MetricsServer endpoint + ResourceSampler behavior."""

import json
import urllib.error
import urllib.request

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    EventDispatcher,
    MetricsRegistry,
    MetricsServer,
    ResourceSampler,
    RingBufferSink,
    parse_exposition,
)


def _get(url: str) -> "tuple[int, str, str]":
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return (response.status, response.headers.get("Content-Type", ""),
                response.read().decode("utf-8"))


class TestMetricsServer:
    def test_construction_opens_no_socket(self):
        server = MetricsServer(MetricsRegistry())
        assert not server.running
        server.stop()  # idempotent on a never-started server

    def test_port_zero_binds_ephemeral(self):
        with MetricsServer(MetricsRegistry(), port=0) as server:
            assert server.running
            assert server.port > 0
            assert str(server.port) in server.url

    def test_invalid_port_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsServer(MetricsRegistry(), port=-1)
        with pytest.raises(ConfigurationError):
            MetricsServer(MetricsRegistry(), port=70000)

    def test_metrics_endpoint_serves_exposition(self):
        registry = MetricsRegistry()
        registry.counter("protocol.hits").inc(5)
        with MetricsServer(registry) as server:
            status, content_type, body = _get(server.url + "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain")
        assert "version=0.0.4" in content_type
        assert parse_exposition(body).value("protocol.hits") == 5

    def test_scrapes_see_live_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("protocol.hits")
        with MetricsServer(registry) as server:
            first = parse_exposition(_get(server.url + "/metrics")[2])
            counter.inc(3)
            second = parse_exposition(_get(server.url + "/metrics")[2])
        assert first.value("protocol.hits") == 0
        assert second.value("protocol.hits") == 3

    def test_healthz_payload(self):
        registry = MetricsRegistry()
        registry.counter("c")
        with MetricsServer(registry) as server:
            _get(server.url + "/metrics")
            status, content_type, body = _get(server.url + "/healthz")
        assert status == 200
        assert content_type.startswith("application/json")
        health = json.loads(body)
        assert health["status"] == "ok"
        assert health["scrapes"] == 1
        # "c" plus the telemetry.scrapes counter the scrape registered.
        assert health["metrics"] == 2
        assert health["uptime_seconds"] >= 0

    def test_unknown_path_is_404(self):
        with MetricsServer(MetricsRegistry()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_query_string_is_ignored(self):
        with MetricsServer(MetricsRegistry()) as server:
            status, _, _ = _get(server.url + "/metrics?format=text")
        assert status == 200

    def test_stop_releases_the_port(self):
        registry = MetricsRegistry()
        server = MetricsServer(registry)
        server.start()
        url = server.url
        server.stop()
        assert not server.running
        with pytest.raises((urllib.error.URLError, OSError)):
            urllib.request.urlopen(url + "/metrics", timeout=0.5)
        server.stop()  # idempotent

    def test_scrape_counts_scrapes_in_registry(self):
        registry = MetricsRegistry()
        server = MetricsServer(registry)
        server.scrape()
        server.scrape()
        assert server.scrapes == 2
        assert registry.counter_values()["telemetry.scrapes"] == 2


class TestResourceSampler:
    def test_invalid_interval_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceSampler(MetricsRegistry(), interval=0.0)

    def test_sample_once_publishes_process_gauges(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=60.0)
        sampler.sample_once()
        snapshot = registry.snapshot()
        assert snapshot["process.cpu_seconds"] >= 0
        assert snapshot["process.threads"] >= 1
        assert "process.gc_gen0_pending" in snapshot
        assert "process.gc_gen2_collections" in snapshot
        assert snapshot["telemetry.samples"] == 1
        # Linux-only; this repo's CI and dev machines run Linux.
        assert snapshot.get("process.rss_bytes", 0) > 0

    def test_sampler_is_inert_until_started(self):
        registry = MetricsRegistry()
        ResourceSampler(registry, interval=60.0)
        assert registry.names() == []

    def test_thread_lifecycle_and_final_sample(self):
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=60.0)
        with sampler:
            assert sampler.running
        assert not sampler.running
        # At least the immediate sample plus the stop() closing sample.
        assert registry.counter_values()["telemetry.samples"] >= 2
        sampler.stop()  # idempotent

    def test_dispatcher_sink_depths(self):
        dispatcher = EventDispatcher()
        ring = RingBufferSink(maxlen=8)
        dispatcher.attach(ring)
        registry = MetricsRegistry()
        sampler = ResourceSampler(registry, interval=60.0,
                                  dispatcher=dispatcher)
        sampler.sample_once()
        assert registry.snapshot()["obs.sink.RingBufferSink.depth"] == 0

    def test_custom_probes_and_dead_probe_tolerance(self):
        registry = MetricsRegistry()

        def boom() -> float:
            raise RuntimeError("torn down")

        sampler = ResourceSampler(registry, interval=60.0,
                                  probes={"sweep.progress": lambda: 0.5,
                                          "dead.probe": boom})
        sampler.add_probe("extra", lambda: 7.0)
        sampler.sample_once()
        snapshot = registry.snapshot()
        assert snapshot["sweep.progress"] == 0.5
        assert snapshot["extra"] == 7.0
        assert "dead.probe" not in snapshot
        assert snapshot["telemetry.samples"] == 1
