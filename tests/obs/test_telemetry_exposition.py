"""Prometheus text exposition: rendering, escaping, bucket cumulativity."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, parse_exposition, render_exposition
from repro.obs.telemetry import exposition_name


class TestExpositionNames:
    def test_dotted_names_become_underscored(self):
        assert exposition_name("protocol.run_hit_ratio") == \
            "protocol_run_hit_ratio"

    def test_illegal_characters_map_to_underscore(self):
        assert exposition_name("obs.sink.JsonlSink.0.depth") == \
            "obs_sink_JsonlSink_0_depth"
        assert exposition_name("a-b c/d") == "a_b_c_d"

    def test_leading_digit_gains_prefix(self):
        assert exposition_name("2q.promotions") == "_2q_promotions"

    def test_colons_survive(self):
        assert exposition_name("ns:metric") == "ns:metric"


class TestRenderGolden:
    """Byte-exact rendering of a small, fully specified registry."""

    def build(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("protocol.hits").inc(42)
        registry.counter("protocol.misses").inc(8)
        registry.set_gauge("sweep.cells_done", 3)
        histogram = registry.histogram("protocol.run_hit_ratio",
                                       0.0, 1.0, bins=4)
        for value in (0.1, 0.3, 0.3, 0.9):
            histogram.observe(value)
        return registry

    def test_golden_text(self):
        text = render_exposition(self.build())
        assert text == (
            "# HELP protocol_hits protocol.hits\n"
            "# TYPE protocol_hits counter\n"
            "protocol_hits 42\n"
            "# HELP protocol_misses protocol.misses\n"
            "# TYPE protocol_misses counter\n"
            "protocol_misses 8\n"
            "# HELP sweep_cells_done sweep.cells_done\n"
            "# TYPE sweep_cells_done gauge\n"
            "sweep_cells_done 3\n"
            "# HELP protocol_run_hit_ratio protocol.run_hit_ratio\n"
            "# TYPE protocol_run_hit_ratio histogram\n"
            'protocol_run_hit_ratio_bucket{le="0.25"} 1\n'
            'protocol_run_hit_ratio_bucket{le="0.5"} 3\n'
            'protocol_run_hit_ratio_bucket{le="0.75"} 3\n'
            'protocol_run_hit_ratio_bucket{le="1"} 4\n'
            'protocol_run_hit_ratio_bucket{le="+Inf"} 4\n'
            "protocol_run_hit_ratio_sum 1.6\n"
            "protocol_run_hit_ratio_count 4\n")

    def test_rendering_is_deterministic(self):
        registry = self.build()
        assert render_exposition(registry) == render_exposition(registry)

    def test_bucket_ladder_is_cumulative_and_capped_by_count(self):
        text = render_exposition(self.build())
        counts = [int(line.rsplit(" ", 1)[1]) for line in text.splitlines()
                  if line.startswith("protocol_run_hit_ratio_bucket")]
        assert counts == sorted(counts), "ladder must be non-decreasing"
        assert counts[-1] == 4, "+Inf bucket must equal _count"


class TestRenderEdgeCases:
    def test_empty_registry_renders_empty(self):
        assert render_exposition(MetricsRegistry()) == ""

    def test_empty_histogram_is_omitted(self):
        registry = MetricsRegistry()
        registry.histogram("protocol.run_hit_ratio", 0.0, 1.0)
        registry.counter("protocol.hits").inc()
        text = render_exposition(registry)
        assert "run_hit_ratio" not in text
        assert "protocol_hits 1" in text

    def test_out_of_range_observations_stay_in_the_ladder(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("h", 0.0, 1.0, bins=2)
        histogram.observe(-5.0)
        histogram.observe(99.0)
        text = render_exposition(registry)
        assert 'h_bucket{le="+Inf"} 2' in text
        assert "h_count 2" in text

    def test_worker_label_is_escaped_and_rendered(self):
        registry = MetricsRegistry()
        registry.merge_gauges({"g": 7.0}, worker='we"ird\\pid')
        text = render_exposition(registry)
        assert 'g{worker="we\\"ird\\\\pid"} 7' in text

    def test_help_line_escapes_newline_and_backslash(self):
        registry = MetricsRegistry()
        registry.counter("weird\nname\\here").inc()
        text = render_exposition(registry)
        help_line = next(line for line in text.splitlines()
                         if line.startswith("# HELP"))
        assert "\\n" in help_line and "\\\\" in help_line
        assert "\n" not in help_line

    def test_nan_and_inf_values_render(self):
        registry = MetricsRegistry()
        registry.set_gauge("g.nan", float("nan"))
        registry.set_gauge("g.inf", float("inf"))
        registry.set_gauge("g.ninf", float("-inf"))
        text = render_exposition(registry)
        assert "g_nan NaN" in text
        assert "g_inf +Inf" in text
        assert "g_ninf -Inf" in text

    def test_callable_gauges_render_live_values(self):
        registry = MetricsRegistry()
        box = {"value": 1.0}
        registry.gauge("live", lambda: box["value"])
        assert "live 1" in render_exposition(registry)
        box["value"] = 2.5
        assert "live 2.5" in render_exposition(registry)


class TestParseRoundTrip:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("protocol.hits").inc(10)
        registry.set_gauge("sweep.cells_done", 2)
        registry.merge_gauges({"protocol.last_run_hit_ratio": 0.25},
                              worker="4242")
        histogram = registry.histogram("protocol.run_hit_ratio",
                                       0.0, 1.0, bins=8)
        for value in (0.125, 0.25, 0.5, 0.875):
            histogram.observe(value)

        exposition = parse_exposition(render_exposition(registry))

        assert exposition.value("protocol.hits") == 10
        assert exposition.value("sweep.cells_done") == 2
        assert exposition.value("protocol.last_run_hit_ratio") == 0.25
        assert exposition.labels["protocol_last_run_hit_ratio"] == \
            {"worker": "4242"}
        assert exposition.types["protocol_hits"] == "counter"
        assert exposition.help["protocol_hits"] == "protocol.hits"
        series = exposition.histograms["protocol_run_hit_ratio"]
        assert series.count == 4
        assert series.sum == pytest.approx(1.75)
        assert series.mean == pytest.approx(0.4375)
        assert series.buckets[-1] == (float("inf"), 4)
        p50 = series.quantile(0.5)
        assert p50 is not None and 0.0 < p50 < 1.0

    def test_parser_tolerates_garbage_lines(self):
        exposition = parse_exposition(
            "protocol_hits 3\n"
            "!!! not a metric\n"
            "torn_line_without_value\n"
            "bad_value abc\n"
            "\n"
            "protocol_misses 1\n")
        assert exposition.value("protocol_hits") == 3
        assert exposition.value("protocol_misses") == 1
        assert not exposition.has("bad_value")

    def test_quantile_rejects_out_of_range(self):
        registry = MetricsRegistry()
        registry.histogram("h", 0.0, 1.0).observe(0.5)
        series = parse_exposition(
            render_exposition(registry)).histograms["h"]
        with pytest.raises(ConfigurationError):
            series.quantile(1.5)

    def test_empty_series_quantile_is_none(self):
        from repro.obs import HistogramSeries
        series = HistogramSeries()
        assert series.quantile(0.5) is None
        assert series.mean == 0.0

    def test_value_falls_back_to_default(self):
        exposition = parse_exposition("")
        assert exposition.value("nope", default=-1.0) == -1.0
        assert math.isnan(exposition.value("nope", default=float("nan")))
