"""Tests for process-aware Time-Out Correlation (paper Section 2.1.1).

The paper's default collapses *any* reference pair within the CRP; the
process-aware variant only treats same-process pairs as correlated, so an
inter-process re-reference (pair type 4 — the kind that *should* drive
interarrival estimation) creates history even when it lands inside the
time-out window.
"""

from repro.core import LRUKPolicy
from repro.sim import CacheSimulator
from repro.types import Reference


def access_all(policy, annotated):
    simulator = CacheSimulator(policy, capacity=8)
    for page, process in annotated:
        simulator.access(Reference(page=page, process_id=process))
    return simulator


class TestProcessAwareCorrelation:
    def test_same_process_pair_is_correlated(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5,
                            distinguish_processes=True)
        access_all(policy, [(1, 42), (1, 42)])
        block = policy.history_block(1)
        assert block.hist == [1, 0]          # second ref collapsed
        assert policy.stats.correlated_references == 1

    def test_different_process_pair_is_independent(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5,
                            distinguish_processes=True)
        access_all(policy, [(1, 42), (1, 43)])
        block = policy.history_block(1)
        assert block.hist == [2, 1]          # full history recorded
        assert policy.stats.correlated_references == 0

    def test_default_mode_ignores_processes(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5)
        access_all(policy, [(1, 42), (1, 43)])
        block = policy.history_block(1)
        assert block.hist == [1, 0]          # paper's simple mode
        assert policy.stats.correlated_references == 1

    def test_missing_process_ids_never_correlate_in_aware_mode(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5,
                            distinguish_processes=True)
        access_all(policy, [(1, None), (1, None)])
        block = policy.history_block(1)
        # Unknown processes cannot be asserted equal; the pair counts as
        # independent (conservative direction: more history, not less).
        assert block.hist == [2, 1]

    def test_inter_process_pair_beats_same_process_burst(self):
        # Page 5: two quick references from DIFFERENT processes (genuine
        # popularity, finite b2). Page 6: the same pattern from ONE
        # process (a burst, b2 stays infinite). When a victim is needed,
        # the burst page 6 must go.
        policy = LRUKPolicy(k=2, correlated_reference_period=1,
                            distinguish_processes=True)
        simulator = CacheSimulator(policy, capacity=3)
        simulator.access(Reference(page=5, process_id=1))   # t=1
        simulator.access(Reference(page=5, process_id=2))   # t=2 independent
        simulator.access(Reference(page=6, process_id=3))   # t=3
        simulator.access(Reference(page=6, process_id=3))   # t=4 correlated
        simulator.access(Reference(page=9, process_id=5))   # t=5 filler
        # t=6: 9 is CRP-protected; eligible victims are 5 (b2 finite) and
        # 6 (b2 infinite) -> 6 is dropped.
        outcome = simulator.access(Reference(page=7, process_id=6))
        assert outcome.evicted == 6

    def test_same_burst_on_both_pages_falls_back_to_lru(self):
        # When BOTH pages' pairs are same-process bursts, both have
        # infinite b2 and the subsidiary LRU rule drops the older one.
        policy = LRUKPolicy(k=2, correlated_reference_period=1,
                            distinguish_processes=True)
        simulator = CacheSimulator(policy, capacity=3)
        simulator.access(Reference(page=5, process_id=1))   # t=1
        simulator.access(Reference(page=5, process_id=1))   # t=2 burst
        simulator.access(Reference(page=6, process_id=3))   # t=3
        simulator.access(Reference(page=6, process_id=3))   # t=4 burst
        simulator.access(Reference(page=9, process_id=5))   # t=5 filler
        outcome = simulator.access(Reference(page=7, process_id=6))
        assert outcome.evicted == 5

    def test_reset_clears_process_memory(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5,
                            distinguish_processes=True)
        access_all(policy, [(1, 42)])
        policy.reset()
        assert not policy._last_process
