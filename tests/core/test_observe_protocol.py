"""Tests for the observe() hook across drivers."""

from repro.buffer import BufferPool
from repro.core import LRUKPolicy
from repro.policies import LRUPolicy
from repro.policies.base import ReplacementPolicy
from repro.sim import CacheSimulator
from repro.storage import SimulatedDisk
from repro.types import Reference


class _Recorder(LRUPolicy):
    """An LRU policy that logs every observed reference."""

    def __init__(self):
        super().__init__()
        self.observed = []

    def observe(self, reference, now):
        self.observed.append((reference, now))


class TestObserveHook:
    def test_simulator_calls_observe_before_every_access(self):
        policy = _Recorder()
        simulator = CacheSimulator(policy, 2)
        simulator.access(Reference(page=1, process_id=9))
        simulator.access(Reference(page=1, process_id=8))
        assert [(ref.page, ref.process_id, now)
                for ref, now in policy.observed] == [(1, 9, 1), (1, 8, 2)]

    def test_buffer_pool_calls_observe(self):
        policy = _Recorder()
        disk = SimulatedDisk()
        disk.allocate_many(4)
        pool = BufferPool(disk, policy, 2)
        pool.fetch(0, pin=False, process_id=5)
        assert policy.observed[0][0].process_id == 5

    def test_default_observe_is_a_noop(self):
        # The base hook must not interfere with any policy lacking it.
        policy = LRUPolicy()
        assert ReplacementPolicy.observe(policy,
                                         Reference(page=1), 1) is None

    def test_lruk_sees_processes_through_the_pool(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5,
                            distinguish_processes=True)
        disk = SimulatedDisk()
        disk.allocate_many(4)
        pool = BufferPool(disk, policy, 4)
        pool.fetch(0, pin=False, process_id=1)
        pool.fetch(0, pin=False, process_id=2)   # cross-process pair
        block = policy.history_block(0)
        assert block.hist == [2, 1]              # counted as independent
