"""Lazy victim heap compaction: bounded memory on long runs.

The heap selector supersedes a page's entry on every uncorrelated
reference, so before compaction the heap grew by roughly one stale entry
per reference, unbounded over long runs. Compaction rebuilds it from the
live resident set once stale entries exceed ~2x the live population.
"""

from repro.core import LRUKPolicy
from repro.core.lruk import HEAP_COMPACT_SLACK
from repro.sim import CacheSimulator
from repro.workloads import ZipfianWorkload


def _drive(policy, capacity, count, n=2000, seed=11):
    simulator = CacheSimulator(policy, capacity)
    for reference in ZipfianWorkload(n=n).references(count, seed=seed):
        simulator.access_page(reference.page)
    return simulator


class TestHeapCompaction:
    def test_heap_stays_bounded_on_long_zipfian_run(self):
        capacity = 200
        policy = LRUKPolicy(k=2)
        _drive(policy, capacity, 50_000)
        bound = 2 * capacity + HEAP_COMPACT_SLACK
        assert len(policy._heap) <= bound
        assert policy.stats.heap_compactions > 0
        # Without compaction the heap held one entry per uncorrelated
        # reference; 50k references against a 200-page buffer make the
        # regression unmistakable.
        assert len(policy._heap) < 5_000

    def test_compaction_preserves_heap_scan_equivalence(self):
        # The two selectors are decision-equivalent; compaction must not
        # break that on runs long enough to trigger it repeatedly.
        heap_policy = LRUKPolicy(k=2, selection="heap")
        scan_policy = LRUKPolicy(k=2, selection="scan")
        heap_sim = _drive(heap_policy, 100, 20_000, n=800)
        scan_sim = _drive(scan_policy, 100, 20_000, n=800)
        assert heap_policy.stats.heap_compactions > 0
        assert heap_sim.counter.hits == scan_sim.counter.hits
        assert heap_sim.resident_pages == scan_sim.resident_pages

    def test_compaction_with_crp_protected_pages(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=16)
        simulator = _drive(policy, 150, 30_000, n=1500)
        assert len(policy._heap) <= 2 * 150 + HEAP_COMPACT_SLACK
        assert simulator.counter.total == 30_000

    def test_reset_clears_compaction_counter(self):
        policy = LRUKPolicy(k=2)
        _drive(policy, 100, 20_000)
        assert policy.stats.heap_compactions > 0
        policy.reset()
        assert policy.stats.heap_compactions == 0
        assert policy._heap == []
