"""Behavioural tests of the LRU-K policy against the paper's definitions."""

import pytest

from repro.core import INFINITE_DISTANCE, LRUKPolicy
from repro.errors import ConfigurationError, NoEvictableFrameError
from repro.policies import LRUPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, eviction_order


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            LRUKPolicy(k=0)

    def test_rejects_negative_crp(self):
        with pytest.raises(ConfigurationError):
            LRUKPolicy(k=2, correlated_reference_period=-1)

    def test_rejects_unknown_selection(self):
        with pytest.raises(ConfigurationError):
            LRUKPolicy(k=2, selection="btree")

    def test_rejects_bad_history_bound(self):
        with pytest.raises(ConfigurationError):
            LRUKPolicy(k=2, max_history_blocks=0)


class TestDefinition22:
    """Definition 2.2: evict the maximum backward K-distance."""

    def test_evicts_page_with_infinite_distance_first(self):
        # Pages 1 and 2 are each referenced twice; page 3 once. With K=2,
        # page 3 has b = infinity and must be the victim.
        policy = LRUKPolicy(k=2)
        simulator = drive(policy, [1, 2, 1, 2, 3], capacity=3)
        outcome = simulator.access(4)
        assert outcome.evicted == 3

    def test_evicts_maximum_backward_2_distance(self):
        # t:      1  2  3  4  5  6
        # string: 1  2  1  2  1  2   -> HIST(1,2)=3, HIST(2,2)=4
        # Then 3 arrives; fill capacity 3; reference both again; now a
        # fourth page must evict the page with the *oldest* second-to-last
        # reference.
        policy = LRUKPolicy(k=2)
        simulator = drive(policy, [1, 2, 1, 2, 1, 2], capacity=2)
        # HIST(1,K)=t3, HIST(2,K)=t4 -> page 1 has larger backward distance.
        outcome = simulator.access(9)
        assert outcome.evicted == 1

    def test_subsidiary_lru_among_infinite_distances(self):
        # All three pages referenced once (b = infinity for K=2); the
        # subsidiary policy drops the least recently (uncorrelated)
        # referenced, i.e. classical LRU.
        policy = LRUKPolicy(k=2)
        simulator = drive(policy, [1, 2, 3], capacity=3)
        outcome = simulator.access(4)
        assert outcome.evicted == 1

    def test_twice_referenced_page_outlives_once_referenced_pages(self):
        # The essence of Example 1.1: a page seen twice survives a parade
        # of once-seen pages.
        policy = LRUKPolicy(k=2)
        simulator = drive(policy, [7, 7], capacity=2)
        for newcomer in range(100, 120):
            simulator.access(newcomer)
        assert simulator.is_resident(7)

    def test_k1_matches_classical_lru_decisions(self):
        trace = [1, 2, 3, 1, 4, 2, 5, 1, 2, 3, 4, 5, 1, 3]
        lru_evictions = eviction_order(LRUPolicy(), trace, capacity=3)
        lruk_evictions = eviction_order(LRUKPolicy(k=1), trace, capacity=3)
        assert lruk_evictions == lru_evictions


class TestBackwardDistance:
    def test_unknown_page_has_infinite_distance(self):
        policy = LRUKPolicy(k=2)
        assert policy.backward_k_distance(42, now=10) == INFINITE_DISTANCE

    def test_distance_tracks_kth_reference(self):
        policy = LRUKPolicy(k=2)
        simulator = CacheSimulator(policy, capacity=4)
        simulator.access(1)          # t=1
        simulator.access(2)          # t=2
        simulator.access(1)          # t=3
        assert policy.backward_k_distance(1, now=3) == 3 - 1

    def test_stats_count_admissions_and_evictions(self):
        policy = LRUKPolicy(k=2)
        drive(policy, [1, 2, 3, 4], capacity=2)
        assert policy.stats.admissions == 4
        assert policy.stats.evictions == 2


class TestCorrelatedReferencePeriod:
    def test_burst_does_not_create_history(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5)
        simulator = CacheSimulator(policy, capacity=4)
        simulator.access(1)   # t=1 admit
        simulator.access(1)   # t=2 correlated
        simulator.access(1)   # t=3 correlated
        block = policy.history_block(1)
        assert block.hist == [1, 0]   # still only one uncorrelated ref
        assert block.last == 3
        assert policy.stats.correlated_references == 2

    def test_crp_protected_page_not_chosen(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=3)
        simulator = CacheSimulator(policy, capacity=2)
        simulator.access(1)   # t=1
        simulator.access(2)   # t=2
        simulator.access(2)   # t=3 (page 2's LAST=3)
        # t=4: page 3 arrives. Page 2 is inside its CRP (4-3 <= 3) so the
        # victim must be page 1 (4-1 <= 3 is also true!) -> both protected
        # -> forced eviction of the stalest burst, page 1.
        outcome = simulator.access(3)
        assert outcome.evicted == 1
        assert policy.stats.forced_evictions == 1

    def test_eligible_page_chosen_over_protected_page(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=2)
        simulator = CacheSimulator(policy, capacity=2)
        simulator.access(1)   # t=1
        simulator.access(2)   # t=2
        simulator.access(2)   # t=3
        simulator.access(2)   # t=4
        # t=5: page 1 (LAST=1) is eligible (5-1 > 2); page 2 (LAST=4) is
        # protected (5-4 <= 2). Victim must be page 1, no forcing.
        outcome = simulator.access(3)
        assert outcome.evicted == 1
        assert policy.stats.forced_evictions == 0

    def test_uncorrelated_hit_after_crp_closes_period(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=2)
        simulator = CacheSimulator(policy, capacity=4)
        simulator.access(1)   # t=1
        simulator.access(1)   # t=2 correlated (2-1 <= 2)
        simulator.access(2)   # t=3
        simulator.access(2)   # t=4
        simulator.access(1)   # t=5: 5 - LAST(1)=2 -> 3 > 2, uncorrelated
        block = policy.history_block(1)
        # Correlation period was LAST-HIST1 = 2-1 = 1; old entry shifts
        # from t=1 to t=2; new HIST1 = 5.
        assert block.hist == [5, 2]


class TestRetainedInformation:
    def test_history_survives_eviction(self):
        policy = LRUKPolicy(k=2)
        simulator = drive(policy, [1, 2, 3], capacity=2)
        assert not simulator.is_resident(1)
        assert policy.history_block(1) is not None

    def test_readmission_uses_retained_history(self):
        # Page 1 evicted then re-referenced: with retained info its
        # backward 2-distance is finite, so it beats a once-seen page.
        policy = LRUKPolicy(k=2)
        simulator = drive(policy, [1, 2, 3, 1], capacity=2)
        assert simulator.is_resident(1)
        block = policy.history_block(1)
        assert block.hist[1] == 1  # original reference retained

    def test_rip_purges_old_blocks(self):
        policy = LRUKPolicy(k=2, retained_information_period=10)
        simulator = CacheSimulator(policy, capacity=2)
        simulator.access(1)
        simulator.access(2)
        simulator.access(3)  # evicts 1
        for page in range(100, 400):
            simulator.access(page)
        policy.history.purge(simulator.now, policy._resident.__contains__)
        assert policy.history_block(1) is None

    def test_bounded_history_blocks(self):
        policy = LRUKPolicy(k=2, max_history_blocks=10)
        simulator = CacheSimulator(policy, capacity=4)
        for page in range(200):
            simulator.access(page)
        assert policy.retained_blocks <= 10 + 4  # bound + resident slack


class TestVictimSelectionModes:
    def test_scan_mode_runs(self):
        policy = LRUKPolicy(k=2, selection="scan")
        simulator = drive(policy, [1, 2, 1, 2, 3, 4, 5], capacity=3)
        assert len(simulator.resident_pages) == 3

    def test_exclusions_respected(self):
        policy = LRUKPolicy(k=2)
        drive(policy, [1, 2, 3], capacity=3)
        victim = policy.choose_victim(4, exclude=frozenset({1}))
        assert victim != 1

    def test_all_excluded_raises(self):
        policy = LRUKPolicy(k=2)
        drive(policy, [1, 2], capacity=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({1, 2}))

    def test_empty_buffer_raises(self):
        policy = LRUKPolicy(k=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(1)

    def test_choose_victim_is_pure(self):
        policy = LRUKPolicy(k=2)
        drive(policy, [1, 2, 3], capacity=3)
        first = policy.choose_victim(4)
        second = policy.choose_victim(4)
        assert first == second
        assert len(policy) == 3


class TestReset:
    def test_reset_clears_everything(self):
        policy = LRUKPolicy(k=2)
        drive(policy, [1, 2, 3, 1, 2], capacity=2)
        policy.reset()
        assert len(policy) == 0
        assert policy.retained_blocks == 0
        assert policy.stats.admissions == 0

    def test_policy_reusable_after_reset(self):
        policy = LRUKPolicy(k=2)
        first = eviction_order(policy, [1, 2, 3, 1, 4], capacity=2)
        policy.reset()
        second = eviction_order(policy, [1, 2, 3, 1, 4], capacity=2)
        assert first == second
