"""Tests for the bounded history store (paper §5 open issue) and its
interaction with the heap victim selector."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.sim import CacheSimulator

from ..conftest import eviction_order

traces = st.lists(st.integers(min_value=0, max_value=30),
                  min_size=1, max_size=200)
bounds = st.integers(min_value=1, max_value=12)
capacities = st.integers(min_value=1, max_value=6)


class TestBoundedHistory:
    def test_bound_is_enforced_with_slack_for_residents(self):
        policy = LRUKPolicy(k=2, max_history_blocks=5)
        simulator = CacheSimulator(policy, capacity=3)
        for page in range(100):
            simulator.access(page % 40)
        # Resident pages always keep blocks, so the hard ceiling is
        # bound + capacity.
        assert policy.retained_blocks <= 5 + 3

    def test_resident_blocks_never_dropped(self):
        policy = LRUKPolicy(k=2, max_history_blocks=1)
        simulator = CacheSimulator(policy, capacity=3)
        for page in [1, 2, 3, 1, 2, 3, 4, 5, 6]:
            simulator.access(page)
        for page in simulator.resident_pages:
            assert policy.history_block(page) is not None

    def test_huge_bound_equals_unbounded(self):
        trace = [p % 12 for p in range(150)]
        bounded = eviction_order(
            LRUKPolicy(k=2, max_history_blocks=10 ** 6), trace, 4)
        unbounded = eviction_order(LRUKPolicy(k=2), trace, 4)
        assert bounded == unbounded

    def test_history_memory_pays_off_when_hot_sets_evolve(self):
        # Where retained information matters (a moving hot set whose
        # interarrival exceeds residence — the A3 regime), a tight block
        # bound costs hit ratio and a generous one restores it. (On
        # *stationary* exchangeable hot sets the relationship can invert:
        # forgetting reduces readmission churn — see the A3 ablation
        # notes — so this test deliberately uses the evolving regime.)
        from repro.workloads import MovingHotspotWorkload
        workload = MovingHotspotWorkload(db_pages=200_000, hot_pages=50,
                                         hot_fraction=0.0625,
                                         epoch_length=10_000)
        refs = list(workload.references(30_000, seed=1))

        def ratio(bound):
            policy = LRUKPolicy(k=2, max_history_blocks=bound)
            simulator = CacheSimulator(policy, 80)
            for index, ref in enumerate(refs):
                if index == 10_000:
                    simulator.start_measurement()
                simulator.access(ref)
            return simulator.hit_ratio

        assert ratio(3000) > ratio(20)

    @given(trace=traces, bound=bounds, capacity=capacities)
    @settings(max_examples=60, deadline=None)
    def test_bounded_runs_are_always_legal(self, trace, bound, capacity):
        policy = LRUKPolicy(k=2, max_history_blocks=bound)
        simulator = CacheSimulator(policy, capacity)
        for page in trace:
            simulator.access(page)
            assert len(simulator.resident_pages) <= capacity
            assert policy.retained_blocks <= bound + capacity
        # The heap selector must still function after arbitrary drops.
        if simulator.resident_pages:
            victim = policy.choose_victim(simulator.now + 1)
            assert victim in simulator.resident_pages

    @given(trace=traces, bound=bounds, capacity=capacities)
    @settings(max_examples=40, deadline=None)
    def test_bounded_heap_and_scan_still_agree(self, trace, bound, capacity):
        heap_run = eviction_order(
            LRUKPolicy(k=2, max_history_blocks=bound, selection="heap"),
            trace, capacity)
        scan_run = eviction_order(
            LRUKPolicy(k=2, max_history_blocks=bound, selection="scan"),
            trace, capacity)
        assert heap_run == scan_run
