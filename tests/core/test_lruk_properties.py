"""Property-based tests of LRU-K (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.policies import LRUPolicy
from repro.sim import CacheSimulator

from ..conftest import BruteForceBackwardDistance, eviction_order

# Small page universes force heavy eviction traffic.
traces = st.lists(st.integers(min_value=0, max_value=12),
                  min_size=1, max_size=120)
capacities = st.integers(min_value=1, max_value=6)
ks = st.integers(min_value=1, max_value=4)


@given(trace=traces, capacity=capacities, k=ks)
@settings(max_examples=150, deadline=None)
def test_heap_and_scan_selection_are_decision_equivalent(trace, capacity, k):
    """The O(log B) heap and the literal Figure 2.1 scan agree exactly."""
    heap_evictions = eviction_order(
        LRUKPolicy(k=k, selection="heap"), trace, capacity)
    scan_evictions = eviction_order(
        LRUKPolicy(k=k, selection="scan"), trace, capacity)
    assert heap_evictions == scan_evictions


@given(trace=traces, capacity=capacities, k=ks,
       crp=st.integers(min_value=0, max_value=5))
@settings(max_examples=100, deadline=None)
def test_selection_equivalence_holds_with_crp(trace, capacity, k, crp):
    heap_evictions = eviction_order(
        LRUKPolicy(k=k, correlated_reference_period=crp, selection="heap"),
        trace, capacity)
    scan_evictions = eviction_order(
        LRUKPolicy(k=k, correlated_reference_period=crp, selection="scan"),
        trace, capacity)
    assert heap_evictions == scan_evictions


@given(trace=traces, capacity=capacities)
@settings(max_examples=150, deadline=None)
def test_lruk_with_k1_equals_classical_lru(trace, capacity):
    """LRU-1 is classical LRU (paper Definition 2.2)."""
    assert (eviction_order(LRUKPolicy(k=1), trace, capacity)
            == eviction_order(LRUPolicy(), trace, capacity))


@given(trace=traces, capacity=capacities, k=ks)
@settings(max_examples=150, deadline=None)
def test_hist_k_matches_brute_force_definition(trace, capacity, k):
    """With CRP=0 the incremental HIST(p,K) equals Definition 2.1 applied
    to the raw reference string — for resident pages (history of evicted
    pages is retained but only resident pages drive decisions)."""
    policy = LRUKPolicy(k=k)
    simulator = CacheSimulator(policy, capacity)
    brute = BruteForceBackwardDistance(k)
    for page in trace:
        simulator.access(page)
        brute.record(page)
        for resident in simulator.resident_pages:
            block = policy.history_block(resident)
            assert block is not None
            assert block.kth_time() == brute.kth_most_recent_time(resident)


@given(trace=traces, capacity=capacities, k=ks)
@settings(max_examples=100, deadline=None)
def test_residency_never_exceeds_capacity(trace, capacity, k):
    policy = LRUKPolicy(k=k)
    simulator = CacheSimulator(policy, capacity)
    for page in trace:
        simulator.access(page)
        assert len(simulator.resident_pages) <= capacity
        assert simulator.resident_pages == policy.resident_pages


@given(trace=traces, capacity=capacities, k=ks)
@settings(max_examples=100, deadline=None)
def test_referenced_page_is_always_resident_afterwards(trace, capacity, k):
    policy = LRUKPolicy(k=k)
    simulator = CacheSimulator(policy, capacity)
    for page in trace:
        simulator.access(page)
        assert simulator.is_resident(page)


@given(trace=traces, capacity=capacities, k=ks,
       rip=st.integers(min_value=1, max_value=50))
@settings(max_examples=75, deadline=None)
def test_rip_variants_only_lose_history_never_crash(trace, capacity, k, rip):
    """Any RIP produces a legal run; resident pages always keep blocks."""
    policy = LRUKPolicy(k=k, retained_information_period=rip)
    simulator = CacheSimulator(policy, capacity)
    for page in trace:
        simulator.access(page)
    for resident in simulator.resident_pages:
        assert policy.history_block(resident) is not None


@given(trace=traces, capacity=capacities)
@settings(max_examples=75, deadline=None)
def test_infinite_rip_and_default_are_identical(trace, capacity):
    """RIP=None and an enormous RIP make the same decisions."""
    assert (eviction_order(LRUKPolicy(k=2), trace, capacity)
            == eviction_order(
                LRUKPolicy(k=2, retained_information_period=10 ** 9),
                trace, capacity))
