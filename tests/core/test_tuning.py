"""Tests for the Five Minute Rule tuning helpers."""

import pytest

from repro.clock import ReferenceClock
from repro.core.tuning import (
    CANONICAL_BREAK_EVEN_SECONDS,
    five_minute_rule_interarrival,
    suggest_correlated_reference_period,
    suggest_retained_information_period,
)
from repro.errors import ConfigurationError


class TestFiveMinuteRule:
    def test_default_break_even_is_about_100_seconds(self):
        # Gray & Putzolu's 1987 constants give ~100 s for a 4 KB page.
        assert five_minute_rule_interarrival() == pytest.approx(100.0, rel=0.1)

    def test_larger_pages_break_even_sooner(self):
        small = five_minute_rule_interarrival(page_size_bytes=4096)
        large = five_minute_rule_interarrival(page_size_bytes=65536)
        assert large < small

    def test_cheaper_memory_raises_break_even_page_count(self):
        pricey = five_minute_rule_interarrival(memory_cost_per_megabyte=400.0)
        cheap = five_minute_rule_interarrival(memory_cost_per_megabyte=4.0)
        assert cheap > pricey  # cheap memory -> keep colder pages

    def test_rejects_nonpositive_inputs(self):
        with pytest.raises(ConfigurationError):
            five_minute_rule_interarrival(page_size_bytes=0)
        with pytest.raises(ConfigurationError):
            five_minute_rule_interarrival(disk_cost_per_access_per_second=0)


class TestSuggestions:
    def test_rip_for_lru2_is_twice_break_even(self):
        rip = suggest_retained_information_period(
            break_even_seconds=CANONICAL_BREAK_EVEN_SECONDS, k=2)
        assert rip == pytest.approx(200.0)

    def test_rip_scales_with_k(self):
        assert (suggest_retained_information_period(k=3)
                > suggest_retained_information_period(k=2))

    def test_rip_converts_through_clock(self):
        clock = ReferenceClock(references_per_second=130.0)
        rip = suggest_retained_information_period(k=2, clock=clock)
        assert rip == 26_000

    def test_crp_default_is_five_seconds(self):
        assert suggest_correlated_reference_period() == pytest.approx(5.0)

    def test_crp_converts_through_clock(self):
        clock = ReferenceClock(references_per_second=100.0)
        assert suggest_correlated_reference_period(clock=clock) == 500

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ConfigurationError):
            suggest_retained_information_period(break_even_seconds=0)
        with pytest.raises(ConfigurationError):
            suggest_retained_information_period(k=0)
        with pytest.raises(ConfigurationError):
            suggest_correlated_reference_period(seconds=-1.0)
