"""Tests for HIST/LAST control blocks and the Retained Information store."""

import pytest

from repro.core.history import INFINITE_DISTANCE, HistoryBlock, HistoryStore
from repro.errors import ConfigurationError


class TestHistoryBlock:
    def test_new_block_has_all_zero_history(self):
        block = HistoryBlock(k=3)
        assert block.hist == [0, 0, 0]
        assert block.last == 0

    def test_initial_reference_recorded_when_now_given(self):
        block = HistoryBlock(k=2, now=7)
        assert block.hist == [7, 0]
        assert block.last == 7

    def test_k_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            HistoryBlock(k=0)

    def test_backward_distance_infinite_without_k_references(self):
        block = HistoryBlock(k=2, now=5)
        assert block.backward_distance(10) == INFINITE_DISTANCE

    def test_backward_distance_after_k_references(self):
        block = HistoryBlock(k=2, now=5)
        block.record_uncorrelated(9)
        assert block.hist == [9, 5]
        assert block.backward_distance(12) == 12 - 5

    def test_uncorrelated_reference_shifts_history(self):
        block = HistoryBlock(k=3, now=1)
        block.record_uncorrelated(4)
        block.record_uncorrelated(9)
        assert block.hist == [9, 4, 1]

    def test_correlated_reference_only_moves_last(self):
        block = HistoryBlock(k=2, now=5)
        block.record_correlated(7)
        assert block.last == 7
        assert block.hist == [5, 0]

    def test_figure21_correlation_period_collapse(self):
        # HIST(p,1)=10, then correlated refs move LAST to 14; the next
        # uncorrelated reference at 30 must shift old entries forward by
        # the burst length LAST - HIST(p,1) = 4.
        block = HistoryBlock(k=3, now=10)
        block.record_correlated(12)
        block.record_correlated(14)
        block.record_uncorrelated(30)
        assert block.hist == [30, 10 + 4, 0]
        assert block.last == 30

    def test_collapse_keeps_unknown_entries_unknown(self):
        block = HistoryBlock(k=3, now=10)
        block.record_correlated(15)
        block.record_uncorrelated(20)
        # The third slot was 0 (unknown) and must stay 0, not become the
        # correlation period.
        assert block.hist[2] == 0

    def test_readmission_shifts_without_correlation_adjustment(self):
        block = HistoryBlock(k=2, now=10)
        block.record_correlated(14)  # burst that ended with eviction
        block.record_readmission(25)
        assert block.hist == [25, 10]
        assert block.last == 25

    def test_kth_time_is_last_slot(self):
        block = HistoryBlock(k=2, now=3)
        block.record_uncorrelated(8)
        assert block.kth_time() == 3


class TestK2Specialization:
    """The branchless K=2 shift must match the generic collapse loop."""

    @staticmethod
    def generic_uncorrelated(block, now):
        """The pre-specialization Figure 2.1 collapse, any K."""
        hist = block.hist
        correlation_period = block.last - hist[0]
        for i in range(len(hist) - 1, 0, -1):
            hist[i] = hist[i - 1] + correlation_period if hist[i - 1] else 0
        hist[0] = now
        block.last = now

    def test_collapse_reduces_to_last(self):
        # HIST(p,2) = HIST(p,1) + (LAST - HIST(p,1)) = LAST exactly.
        block = HistoryBlock(k=2, now=10)
        block.record_correlated(14)
        block.record_uncorrelated(30)
        assert block.hist == [30, 14]
        assert block.last == 30

    def test_unknown_first_slot_stays_unknown(self):
        block = HistoryBlock(k=2)
        block.record_correlated(5)  # LAST moves, HIST(p,1) still unknown
        block.record_uncorrelated(9)
        assert block.hist == [9, 0]

    def test_differential_against_generic_loop(self):
        import random
        rng = random.Random(42)
        fast = HistoryBlock(k=2, now=1)
        slow = HistoryBlock(k=2, now=1)
        now = 1
        for _ in range(500):
            now += rng.randrange(1, 6)
            action = rng.randrange(3)
            if action == 0:
                fast.record_uncorrelated(now)
                self.generic_uncorrelated(slow, now)
            elif action == 1:
                fast.record_correlated(now)
                slow.record_correlated(now)
            else:
                fast.record_readmission(now)
                slow.hist[1] = slow.hist[0]
                slow.hist[0] = now
                slow.last = now
            assert fast.hist == slow.hist and fast.last == slow.last

    def test_readmission_plain_shift(self):
        block = HistoryBlock(k=2, now=10)
        block.record_correlated(14)
        block.record_readmission(25)
        assert block.hist == [25, 10]
        assert block.last == 25


class TestHistoryStore:
    def test_get_or_create_creates_once(self):
        store = HistoryStore(k=2)
        block, created = store.get_or_create(5)
        assert created
        again, created_again = store.get_or_create(5)
        assert not created_again
        assert again is block

    def test_len_and_contains(self):
        store = HistoryStore(k=2)
        store.get_or_create(1)
        store.get_or_create(2)
        assert len(store) == 2
        assert 1 in store
        assert 3 not in store

    def test_purge_drops_expired_non_resident_blocks(self):
        store = HistoryStore(k=2, retained_information_period=10)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(5)
        store.touch(1, is_resident=lambda p: False)
        dropped = store.purge(100, is_resident=lambda p: False)
        assert dropped == 1
        assert 1 not in store

    def test_purge_spares_recent_blocks(self):
        store = HistoryStore(k=2, retained_information_period=1000)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(95)
        store.touch(1, is_resident=lambda p: False)
        assert store.purge(100, is_resident=lambda p: False) == 0
        assert 1 in store

    def test_purge_spares_resident_blocks_even_when_expired(self):
        store = HistoryStore(k=2, retained_information_period=10)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(5)
        store.touch(1, is_resident=lambda p: True)
        assert store.purge(1000, is_resident=lambda p: True) == 0
        assert 1 in store

    def test_postponed_resident_block_purged_after_eviction(self):
        store = HistoryStore(k=2, retained_information_period=10)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(5)
        store.touch(1, is_resident=lambda p: True)
        store.purge(1000, is_resident=lambda p: True)
        # Now the page leaves the buffer; the retained entry must expire.
        assert store.purge(2000, is_resident=lambda p: False) == 1

    def test_touch_triggers_amortized_purge(self):
        store = HistoryStore(k=2, retained_information_period=5,
                             purge_interval=3)
        for page in range(3):
            block, _ = store.get_or_create(page)
            block.record_uncorrelated(page + 1)
            store.touch(page, is_resident=lambda p: False)
        # After the third touch the sweep ran at now=3; pages with
        # last + 5 < 3 would be gone (none here), so everything survives.
        assert len(store) == 3
        late, _ = store.get_or_create(99)
        late.record_uncorrelated(1000)
        store.touch(99, is_resident=lambda p: False)
        store.touch(99, is_resident=lambda p: False)
        store.touch(99, is_resident=lambda p: False)
        assert len(store) == 1  # the three early blocks expired

    def test_stale_expiry_entries_ignored(self):
        store = HistoryStore(k=2, retained_information_period=10)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(5)
        store.touch(1, is_resident=lambda p: False)
        block.record_uncorrelated(95)  # touched again, fresher
        store.touch(1, is_resident=lambda p: False)
        assert store.purge(100, is_resident=lambda p: False) == 0
        assert 1 in store

    def test_none_rip_never_purges(self):
        store = HistoryStore(k=2, retained_information_period=None)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(1)
        store.touch(1, is_resident=lambda p: False)
        assert store.purge(10 ** 9, is_resident=lambda p: False) == 0

    def test_drop_removes_unconditionally(self):
        store = HistoryStore(k=2)
        store.get_or_create(1)
        store.drop(1)
        assert 1 not in store
        store.drop(1)  # idempotent

    def test_clear_resets_counters(self):
        store = HistoryStore(k=2, retained_information_period=1)
        block, _ = store.get_or_create(1)
        block.record_uncorrelated(1)
        store.touch(1, is_resident=lambda p: False)
        store.purge(100, is_resident=lambda p: False)
        store.clear()
        assert len(store) == 0
        assert store.purged_blocks == 0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ConfigurationError):
            HistoryStore(k=0)
        with pytest.raises(ConfigurationError):
            HistoryStore(k=2, retained_information_period=0)
        with pytest.raises(ConfigurationError):
            HistoryStore(k=2, purge_interval=0)
