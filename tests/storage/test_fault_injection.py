"""Fault-injection tests: corruption detection end to end."""

import pytest

from repro.buffer import BufferPool
from repro.db import build_customer_database
from repro.errors import ConfigurationError, StorageError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk


class TestDiskCorruption:
    def test_corrupted_payload_detected_on_read(self):
        disk = SimulatedDisk()
        from repro.storage import DiskPage
        page_id = disk.allocate()
        disk.write(DiskPage(page_id=page_id, payload=b"x" * 500))
        disk.corrupt(page_id, byte_index=100)
        with pytest.raises(StorageError):
            disk.read(page_id)

    def test_corruption_in_padding_is_harmless(self):
        # Bytes beyond the payload are zero padding not covered by the
        # checksum; flipping them changes nothing observable.
        disk = SimulatedDisk()
        from repro.storage import DiskPage
        page_id = disk.allocate()
        disk.write(DiskPage(page_id=page_id, payload=b"short"))
        disk.corrupt(page_id, byte_index=4000)
        assert disk.read(page_id).payload == b"short"

    def test_bad_byte_index_rejected(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        with pytest.raises(ConfigurationError):
            disk.corrupt(page_id, byte_index=99_999)

    def test_rewrite_heals_corruption(self):
        disk = SimulatedDisk()
        from repro.storage import DiskPage
        page_id = disk.allocate()
        disk.write(DiskPage(page_id=page_id, payload=b"data"))
        disk.corrupt(page_id, byte_index=30)
        disk.write(DiskPage(page_id=page_id, payload=b"fresh"))
        assert disk.read(page_id).payload == b"fresh"


class TestCorruptionThroughTheStack:
    def test_buffer_pool_surfaces_storage_error(self):
        disk = SimulatedDisk()
        from repro.storage import DiskPage
        page_id = disk.allocate()
        disk.write(DiskPage(page_id=page_id, payload=b"y" * 200))
        disk.corrupt(page_id, byte_index=50)
        pool = BufferPool(disk, LRUPolicy(), capacity=4)
        with pytest.raises(StorageError):
            pool.fetch(page_id)

    def test_resident_copy_shields_until_eviction(self):
        # Corruption on disk is invisible while the clean page is
        # resident; it surfaces on the re-read after eviction.
        disk = SimulatedDisk()
        disk.allocate_many(4)
        pool = BufferPool(disk, LRUPolicy(), capacity=2)
        pool.fetch(0, pin=False)
        disk.corrupt(0, byte_index=20)
        pool.fetch(0, pin=False)           # hit: no disk read, no error
        pool.fetch(1, pin=False)
        pool.fetch(2, pin=False)           # evicts 0 (clean, no write-back)
        with pytest.raises(StorageError):
            pool.fetch(0)

    def test_database_lookup_detects_corrupt_record_page(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, LRUPolicy(), capacity=256)
        database = build_customer_database(pool, customers=200)
        pool.flush_all()
        victim_page = database.record_pages()[3]
        pool.evict_page(victim_page)
        disk.corrupt(victim_page, byte_index=500)
        # Customers 6 and 7 live on record page index 3 (2 per page).
        with pytest.raises(StorageError):
            database.lookup(6)
