"""Tests for the disk timing model and trace file I/O."""

import io

import pytest

from repro.errors import ConfigurationError, TraceFormatError
from repro.storage import DiskQueue, DiskServiceModel, read_trace, write_trace
from repro.storage.trace_io import trace_round_trip
from repro.types import AccessKind, Reference


class TestServiceModel:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            DiskServiceModel(average_seek_ms=0)
        with pytest.raises(ConfigurationError):
            DiskServiceModel(cylinders=0)

    def test_same_cylinder_has_no_seek(self):
        model = DiskServiceModel(pages_per_cylinder=100)
        assert model.seek_ms(5, 7) == 0.0

    def test_longer_seeks_cost_more(self):
        model = DiskServiceModel(pages_per_cylinder=1)
        near = model.seek_ms(0, 10)
        far = model.seek_ms(0, 500)
        assert 0 < near < far

    def test_unknown_position_charges_average(self):
        model = DiskServiceModel()
        assert model.seek_ms(None, 100) == model.average_seek_ms

    def test_service_includes_rotation_and_transfer(self):
        model = DiskServiceModel()
        service = model.service_ms(None, 0)
        assert service > model.average_seek_ms + model.rotation_ms / 2

    def test_sequential_cheaper_than_random(self):
        model = DiskServiceModel()
        sequential = model.service_ms(100, 101)
        random_jump = model.service_ms(100, 10 ** 6)
        assert sequential < random_jump


class TestDiskQueue:
    def test_idle_server_no_wait(self):
        queue = DiskQueue()
        response = queue.submit(0, arrival_ms=0.0)
        assert response > 0
        assert queue.wait_ms.mean == 0.0

    def test_back_to_back_requests_queue_up(self):
        queue = DiskQueue()
        queue.submit(0, arrival_ms=0.0)
        queue.submit(10 ** 6, arrival_ms=0.0)   # arrives while busy
        assert queue.wait_ms.count == 2
        assert queue.wait_ms.mean > 0.0         # the second request waited
        assert queue.response_ms.mean > queue.wait_ms.mean

    def test_queue_depth_grows_under_overload(self):
        queue = DiskQueue()
        for request in range(50):
            queue.submit(request * 10 ** 5, arrival_ms=float(request))
        assert queue.depth_at_arrival.mean > 1.0

    def test_rejects_negative_arrival(self):
        with pytest.raises(ConfigurationError):
            DiskQueue().submit(0, arrival_ms=-1.0)

    def test_spaced_arrivals_do_not_queue(self):
        queue = DiskQueue()
        for request in range(10):
            queue.submit(0, arrival_ms=request * 10_000.0)
        assert queue.wait_ms.mean == 0.0


class TestTraceIO:
    def test_roundtrip_plain_pages(self):
        refs = [Reference(page=p) for p in [1, 5, 3, 1]]
        assert trace_round_trip(refs) == refs

    def test_roundtrip_full_metadata(self):
        refs = [
            Reference(page=1, kind=AccessKind.WRITE, process_id=2, txn_id=9),
            Reference(page=2, kind=AccessKind.READ, process_id=0),
            Reference(page=3),
        ]
        assert trace_round_trip(refs) == refs

    def test_comment_preserved_as_noise(self):
        buffer = io.StringIO()
        write_trace(buffer, [Reference(page=1)], comment="hello\nworld")
        buffer.seek(0)
        assert list(read_trace(buffer)) == [Reference(page=1)]

    def test_bad_header_rejected(self):
        with pytest.raises(TraceFormatError):
            list(read_trace(io.StringIO("not a trace\n1\n")))

    def test_bad_page_id_rejected(self):
        source = io.StringIO("#repro-trace v1\nabc\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(source))

    def test_negative_page_rejected(self):
        source = io.StringIO("#repro-trace v1\n-4\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(source))

    def test_bad_kind_rejected(self):
        source = io.StringIO("#repro-trace v1\n1 z\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(source))

    def test_too_many_fields_rejected(self):
        source = io.StringIO("#repro-trace v1\n1 r 2 3 4\n")
        with pytest.raises(TraceFormatError):
            list(read_trace(source))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "trace.txt"
        refs = [Reference(page=p, kind=AccessKind.WRITE) for p in range(10)]
        count = write_trace(path, refs, comment="unit test")
        assert count == 10
        assert list(read_trace(path)) == refs
