"""Tests for disk pages and the simulated disk."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    ConfigurationError,
    PageNotAllocatedError,
    StorageError,
)
from repro.storage import PAGE_SIZE, DiskPage, SimulatedDisk
from repro.storage.page import PAGE_PAYLOAD_SIZE


class TestDiskPage:
    def test_roundtrip(self):
        page = DiskPage(page_id=7, payload=b"hello world", version=3)
        recovered = DiskPage.from_bytes(page.to_bytes())
        assert recovered.page_id == 7
        assert recovered.payload == b"hello world"
        assert recovered.version == 3

    @given(payload=st.binary(max_size=PAGE_PAYLOAD_SIZE))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any_payload(self, payload):
        page = DiskPage(page_id=1, payload=payload)
        assert DiskPage.from_bytes(page.to_bytes()).payload == payload

    def test_serialized_size_is_page_size(self):
        assert len(DiskPage(page_id=0).to_bytes()) == PAGE_SIZE

    def test_payload_too_large_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskPage(page_id=0, payload=b"x" * (PAGE_PAYLOAD_SIZE + 1))

    def test_negative_page_id_rejected(self):
        with pytest.raises(ConfigurationError):
            DiskPage(page_id=-1)

    def test_corruption_detected(self):
        raw = bytearray(DiskPage(page_id=3, payload=b"payload").to_bytes())
        raw[-1] ^= 0xFF  # flip a payload byte... tail is padding; flip data
        raw[30] ^= 0xFF
        with pytest.raises(StorageError):
            DiskPage.from_bytes(bytes(raw))

    def test_wrong_length_rejected(self):
        with pytest.raises(StorageError):
            DiskPage.from_bytes(b"short")

    def test_with_payload_bumps_version(self):
        page = DiskPage(page_id=1, payload=b"a", version=5)
        updated = page.with_payload(b"b")
        assert updated.version == 6
        assert updated.page_id == 1


class TestSimulatedDisk:
    def test_allocation_sequential_ids(self):
        disk = SimulatedDisk()
        assert disk.allocate() == 0
        assert disk.allocate() == 1
        assert disk.allocated_pages == 2

    def test_allocate_many(self):
        disk = SimulatedDisk()
        ids = disk.allocate_many(5)
        assert list(ids) == [0, 1, 2, 3, 4]

    def test_capacity_enforced(self):
        disk = SimulatedDisk(capacity_pages=2)
        disk.allocate()
        disk.allocate()
        with pytest.raises(ConfigurationError):
            disk.allocate()

    def test_read_unallocated_rejected(self):
        disk = SimulatedDisk()
        with pytest.raises(PageNotAllocatedError):
            disk.read(99)

    def test_write_then_read(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        disk.write(DiskPage(page_id=page_id, payload=b"data", version=1))
        assert disk.read(page_id).payload == b"data"

    def test_io_statistics(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        disk.read(page_id)
        disk.read(page_id)
        disk.write(DiskPage(page_id=page_id))
        assert disk.stats.reads == 2
        assert disk.stats.writes == 1
        assert disk.stats.total_ios == 3
        disk.stats.reset()
        assert disk.stats.total_ios == 0

    def test_fresh_page_is_zeroed(self):
        disk = SimulatedDisk()
        page_id = disk.allocate()
        assert disk.read(page_id).payload == b""
