"""Columnar on-disk traces: round-trips, zero-copy reads, corruption.

The format contract (:mod:`repro.storage.columnar`): a written trace
reads back bit-identically through an ``mmap`` view with no decode
step, and *every* way a file can lie about itself — truncation, foreign
bytes, version skew, a count that disagrees with the payload — raises
:class:`~repro.errors.TraceCorruptionError` instead of being silently
read as a shorter trace. The spill wiring in
:mod:`repro.sim.trace_cache` rides the same format, so its
memory/mmap equivalence is pinned here too.
"""

import os
import struct
from array import array

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.errors import TraceCorruptionError
from repro.sim import CachedTrace, measure_hit_ratio
from repro.storage.columnar import (
    COLUMNAR_MAGIC,
    COLUMNAR_VERSION,
    TraceFile,
    bake_trace,
    workload_fingerprint,
    write_trace,
)
from repro.workloads import BankOLTPWorkload, ZipfianWorkload

HEADER = struct.Struct("<8sIqqI")


def write(tmp_path, pages, name="t.rtrc", **kwargs):
    path = tmp_path / name
    write_trace(path, pages, **kwargs)
    return path


class TestRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(pages=st.lists(st.integers(min_value=-2**62, max_value=2**62),
                          max_size=200),
           seed=st.integers(min_value=-2**31, max_value=2**31),
           fingerprint=st.text(max_size=40))
    def test_write_then_read_is_identity(self, tmp_path_factory, pages,
                                         seed, fingerprint):
        path = tmp_path_factory.mktemp("traces") / "t.rtrc"
        written = write_trace(path, pages, fingerprint=fingerprint,
                              seed=seed)
        assert written == os.path.getsize(path)
        with TraceFile(path) as trace:
            assert len(trace) == len(pages)
            assert trace.seed == seed
            assert trace.fingerprint == fingerprint
            assert list(trace.page_ids()) == pages

    def test_reads_are_zero_copy_views(self, tmp_path):
        path = write(tmp_path, array("q", range(1000)))
        with TraceFile(path) as trace:
            pages = trace.page_ids()
            assert isinstance(pages, memoryview)
            assert pages.format == "q"
            # Slices stay views of the same mapping: no bytes copied.
            assert pages[100:200].obj is pages.obj
            assert pages is trace.page_ids()

    def test_chunks_cover_the_trace_in_order(self, tmp_path):
        path = write(tmp_path, array("q", range(1000)))
        with TraceFile(path) as trace:
            # Consume each view before advancing: chunk views pin the
            # mapping (an exported view forbids closing the mmap), so
            # streaming — not hoarding — is the contract.
            sizes, flattened = [], []
            for chunk in trace.chunks(size=256):
                sizes.append(len(chunk))
                flattened.extend(chunk)
            assert sizes == [256, 256, 256, 232]
            assert flattened == list(range(1000))
            with pytest.raises(ValueError):
                next(trace.chunks(size=0))

    def test_empty_trace_round_trips(self, tmp_path):
        path = write(tmp_path, [])
        with TraceFile(path) as trace:
            assert len(trace) == 0
            assert list(trace.page_ids()) == []

    def test_closed_file_refuses_reads(self, tmp_path):
        path = write(tmp_path, [1, 2, 3])
        trace = TraceFile(path)
        trace.close()
        with pytest.raises(ValueError):
            trace.page_ids()

    def test_write_is_atomic_no_scratch_left(self, tmp_path):
        write(tmp_path, [1, 2, 3])
        assert os.listdir(tmp_path) == ["t.rtrc"]

    def test_oversized_fingerprint_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_trace(tmp_path / "t.rtrc", [1], fingerprint="x" * 70_000)


def corrupt(path, offset, payload):
    with open(path, "r+b") as handle:
        handle.seek(offset)
        handle.write(payload)


class TestCorruption:
    """Every header lie must raise, never read as a shorter trace."""

    def trace(self, tmp_path):
        return write(tmp_path, list(range(100)), fingerprint="zipf")

    def test_bad_magic(self, tmp_path):
        path = self.trace(tmp_path)
        corrupt(path, 0, b"NOTTRACE")
        with pytest.raises(TraceCorruptionError, match="bad magic"):
            TraceFile(path)

    def test_arbitrary_file_is_not_a_trace(self, tmp_path):
        path = tmp_path / "README.md"
        path.write_bytes(b"# not a trace, but comfortably header-sized\n")
        with pytest.raises(TraceCorruptionError, match="bad magic"):
            TraceFile(path)

    def test_version_skew(self, tmp_path):
        path = self.trace(tmp_path)
        corrupt(path, 8, struct.pack("<I", COLUMNAR_VERSION + 1))
        with pytest.raises(TraceCorruptionError, match="version"):
            TraceFile(path)

    def test_truncated_header(self, tmp_path):
        path = self.trace(tmp_path)
        with open(path, "r+b") as handle:
            handle.truncate(HEADER.size - 1)
        with pytest.raises(TraceCorruptionError, match="header"):
            TraceFile(path)

    def test_truncated_payload(self, tmp_path):
        path = self.trace(tmp_path)
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 8)
        with pytest.raises(TraceCorruptionError, match="holds"):
            TraceFile(path)

    def test_count_overstates_payload(self, tmp_path):
        path = self.trace(tmp_path)
        corrupt(path, 12, struct.pack("<q", 0) + struct.pack("<q", 101))
        with pytest.raises(TraceCorruptionError, match="promises"):
            TraceFile(path)

    def test_negative_count(self, tmp_path):
        path = self.trace(tmp_path)
        corrupt(path, 20, struct.pack("<q", -1))
        with pytest.raises(TraceCorruptionError, match="negative"):
            TraceFile(path)

    def test_fingerprint_length_beyond_cap(self, tmp_path):
        path = self.trace(tmp_path)
        corrupt(path, 28, struct.pack("<I", 2**31))
        with pytest.raises(TraceCorruptionError, match="fingerprint"):
            TraceFile(path)

    def test_trailing_garbage(self, tmp_path):
        path = self.trace(tmp_path)
        with open(path, "ab") as handle:
            handle.write(b"junk")
        with pytest.raises(TraceCorruptionError):
            TraceFile(path)


class TestBake:
    def test_bake_matches_the_workload_stream(self, tmp_path):
        workload = ZipfianWorkload(n=100)
        path = tmp_path / "zipf.rtrc"
        bake_trace(path, workload, 3000, seed=11)
        with TraceFile(path) as trace:
            assert list(trace.page_ids()) == \
                list(workload.page_ids(3000, seed=11))
            assert trace.seed == 11
            assert trace.fingerprint == workload_fingerprint(workload)

    def test_metadata_workloads_refuse_to_bake(self, tmp_path):
        with pytest.raises(ValueError, match="metadata"):
            bake_trace(tmp_path / "oltp.rtrc", BankOLTPWorkload(), 500,
                       seed=1)

    def test_fingerprint_reflects_parameters(self):
        a = workload_fingerprint(ZipfianWorkload(n=100))
        b = workload_fingerprint(ZipfianWorkload(n=200))
        assert a.startswith("ZipfianWorkload(")
        assert a != b
        assert a == workload_fingerprint(ZipfianWorkload(n=100))


class TestSpillWiring:
    """CachedTrace spilling: same ids, same simulation results."""

    def test_materialize_spills_past_the_threshold(self):
        workload = ZipfianWorkload(n=50)
        spilled = CachedTrace.materialize(workload, 2000, 3,
                                          spill_threshold=1000)
        in_memory = CachedTrace.materialize(workload, 2000, 3,
                                            spill_threshold=None)
        assert spilled.mmap_backed
        assert not in_memory.mmap_backed
        assert spilled.plain and in_memory.plain
        assert list(spilled.page_ids()) == list(in_memory.page_ids())
        # limit= hands back a sub-view of the same mapping, not a copy.
        head = spilled.page_ids(limit=100)
        assert len(head) == 100
        assert isinstance(head, memoryview)

    def test_spill_env_knob(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SPILL", "500")
        assert CachedTrace.materialize(ZipfianWorkload(n=50), 600,
                                       1).mmap_backed
        monkeypatch.setenv("REPRO_TRACE_SPILL", "0")
        assert not CachedTrace.materialize(ZipfianWorkload(n=50), 600,
                                           1).mmap_backed

    def test_from_file_round_trips_through_the_simulator(self, tmp_path):
        """Tables read through the mmap path must match the heap path."""
        workload = ZipfianWorkload(n=80)
        path = tmp_path / "zipf.rtrc"
        bake_trace(path, workload, 1500, seed=7)
        baked = CachedTrace.from_file(path)
        assert baked.mmap_backed
        direct = CachedTrace.materialize(workload, 1500, 7)
        sim_a = measure_hit_ratio(
            LRUKPolicy(k=2, correlated_reference_period=5), baked, 20, 300)
        sim_b = measure_hit_ratio(
            LRUKPolicy(k=2, correlated_reference_period=5), direct, 20, 300)
        assert sim_a.counter == sim_b.counter
        assert sim_a.resident_pages == sim_b.resident_pages
        assert sim_a.evictions == sim_b.evictions
