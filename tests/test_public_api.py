"""Public-API surface tests: what README promises must import and work."""

import importlib

import pytest


class TestTopLevelApi:
    def test_readme_quickstart_symbols(self):
        import repro
        for name in ("LRUKPolicy", "CacheSimulator", "LRUPolicy",
                     "BufferPool", "SimulatedDisk", "TraceRecorder",
                     "make_policy", "available_policies", "Reference",
                     "AccessKind"):
            assert hasattr(repro, name), name

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version_string(self):
        import repro
        major, minor, patch = repro.__version__.split(".")
        assert int(major) >= 1

    @pytest.mark.parametrize("module", [
        "repro.core", "repro.policies", "repro.buffer", "repro.storage",
        "repro.db", "repro.workloads", "repro.sim", "repro.analysis",
        "repro.stats", "repro.experiments", "repro.cli", "repro.obs",
        "repro.service",
    ])
    def test_every_package_imports_cleanly(self, module):
        imported = importlib.import_module(module)
        assert imported.__doc__, f"{module} lacks a module docstring"

    def test_subpackage_all_exports_resolve(self):
        for module_name in ("repro.core", "repro.policies", "repro.buffer",
                            "repro.storage", "repro.db", "repro.workloads",
                            "repro.sim", "repro.analysis", "repro.stats",
                            "repro.experiments", "repro.obs", "repro.service"):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert getattr(module, name, None) is not None, (
                    f"{module_name}.{name}")

    def test_obs_documented_surface_importable(self):
        """Every class docs/observability.md references must come straight
        from ``repro.obs`` — the documented import surface is locked."""
        obs = importlib.import_module("repro.obs")
        documented = (
            # event stream + dispatch
            "ObsEvent", "AccessEvent", "EvictionEvent", "FlushEvent",
            "PurgeEvent", "SnapshotEvent", "WindowEvent", "ProgressEvent",
            "CellFailureEvent", "EventDispatcher", "Sink", "CallbackSink",
            "activate", "current", "resolve",
            # metrics
            "Counter", "Gauge", "HistogramMetric", "MetricsRegistry",
            "SlidingHitRatioWindow", "HitRatioWindowRecorder",
            # sinks + profiler
            "JsonlSink", "RingBufferSink", "ConsoleProgressSink",
            "TimelineSink", "ProfiledPolicy", "HookProfile",
            # tracing + provenance
            "Span", "Tracer", "write_chrome_trace",
            "EvictionDecisionEvent", "CandidateInfo", "EvictionDecision",
            "NextUseOracle", "ProvenanceRecorder",
            # live telemetry
            "render_exposition", "parse_exposition", "Exposition",
            "HistogramSeries", "MetricsServer", "ResourceSampler",
            # perf trajectory
            "PerfVerdict", "append_record", "check_regression",
            "load_history", "render_report",
        )
        for name in documented:
            assert getattr(obs, name, None) is not None, (
                f"repro.obs.{name} missing from the public surface")
            assert name in obs.__all__, f"{name} not in repro.obs.__all__"

    def test_readme_quickstart_snippet_behaviour(self):
        """The exact numbers the README's quickstart comment promises."""
        from repro import CacheSimulator, LRUKPolicy, LRUPolicy
        from repro.workloads import TwoPoolWorkload

        workload = TwoPoolWorkload(n1=100, n2=10_000)
        results = {}
        for policy in (LRUPolicy(), LRUKPolicy(k=2)):
            sim = CacheSimulator(policy, capacity=100)
            sim.run(workload.references(2_000, seed=1))
            sim.start_measurement()
            sim.run(workload.references(20_000, seed=2))
            results[type(policy).__name__] = sim.hit_ratio
        assert results["LRUPolicy"] == pytest.approx(0.22, abs=0.03)
        assert results["LRUKPolicy"] == pytest.approx(0.459, abs=0.03)
