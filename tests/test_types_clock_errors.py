"""Tests for core value types, clocks, and the error hierarchy."""

import math

import pytest

from repro.clock import LogicalClock, ReferenceClock, is_unbounded
from repro.errors import (
    BufferError_,
    ConfigurationError,
    DatabaseError,
    NoEvictableFrameError,
    PageNotResidentError,
    PolicyError,
    ReproError,
    StorageError,
)
from repro.types import (
    AccessKind,
    HitRatioCounter,
    Reference,
    as_reference,
    reference_stream,
)


class TestReference:
    def test_defaults(self):
        ref = Reference(page=5)
        assert ref.kind is AccessKind.READ
        assert not ref.is_write
        assert ref.process_id is None

    def test_write_flag(self):
        assert Reference(page=1, kind=AccessKind.WRITE).is_write

    def test_frozen(self):
        ref = Reference(page=1)
        with pytest.raises(AttributeError):
            ref.page = 2

    def test_as_reference_coercion(self):
        assert as_reference(7) == Reference(page=7)
        ref = Reference(page=3, kind=AccessKind.WRITE)
        assert as_reference(ref) is ref

    def test_reference_stream(self):
        mixed = [1, Reference(page=2, kind=AccessKind.WRITE), 3]
        pages = [r.page for r in reference_stream(mixed)]
        assert pages == [1, 2, 3]


class TestHitRatioCounter:
    def test_counts(self):
        counter = HitRatioCounter()
        for hit in (True, False, True, True):
            counter.record(hit)
        assert counter.hits == 3
        assert counter.misses == 1
        assert counter.hit_ratio == 0.75

    def test_empty_ratio_zero(self):
        assert HitRatioCounter().hit_ratio == 0.0

    def test_reset_and_merge(self):
        a = HitRatioCounter(hits=2, misses=1)
        b = HitRatioCounter(hits=1, misses=2)
        merged = a.merge(b)
        assert merged.hits == 3
        assert merged.misses == 3
        a.reset()
        assert a.total == 0


class TestLogicalClock:
    def test_tick_is_one_based(self):
        clock = LogicalClock()
        assert clock.tick() == 1
        assert clock.tick() == 2
        assert clock.now == 2

    def test_advance(self):
        clock = LogicalClock()
        clock.advance(10)
        assert clock.now == 10
        with pytest.raises(ConfigurationError):
            clock.advance(-1)

    def test_cannot_start_negative(self):
        with pytest.raises(ConfigurationError):
            LogicalClock(start=-5)


class TestReferenceClock:
    def test_seconds_round_up_to_references(self):
        clock = ReferenceClock(references_per_second=130.0)
        assert clock.seconds_to_references(100.0) == 13_000
        assert clock.seconds_to_references(0.001) == 1  # never zero

    def test_roundtrip(self):
        clock = ReferenceClock(references_per_second=100.0)
        assert clock.references_to_seconds(
            clock.seconds_to_references(42.0)) == pytest.approx(42.0)

    def test_infinity_maps_to_unbounded(self):
        clock = ReferenceClock()
        assert is_unbounded(clock.seconds_to_references(math.inf))
        assert not is_unbounded(clock.seconds_to_references(1000.0))

    def test_invalid_rates_and_durations(self):
        with pytest.raises(ConfigurationError):
            ReferenceClock(references_per_second=0.0)
        clock = ReferenceClock()
        with pytest.raises(ConfigurationError):
            clock.seconds_to_references(-1.0)


class TestErrorHierarchy:
    def test_everything_is_repro_error(self):
        for error_type in (ConfigurationError, PolicyError,
                           NoEvictableFrameError, BufferError_,
                           PageNotResidentError, StorageError,
                           DatabaseError):
            assert issubclass(error_type, ReproError)

    def test_configuration_error_is_value_error(self):
        assert issubclass(ConfigurationError, ValueError)

    def test_page_not_resident_is_key_error(self):
        assert issubclass(PageNotResidentError, KeyError)

    def test_no_evictable_frame_is_policy_error(self):
        assert issubclass(NoEvictableFrameError, PolicyError)
