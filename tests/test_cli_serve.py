"""serve-bench CLI and the telemetry-lifecycle guarantees around it."""

import socket
import threading
import urllib.request

import pytest

from repro.cli import build_parser, main
from repro.errors import ConfigurationError


def free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def telemetry_threads() -> list:
    return [thread for thread in threading.enumerate()
            if thread.name.startswith(("repro-metrics-",
                                       "repro-resource-"))]


class TestParser:
    def test_defaults_meet_the_concurrency_floor(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.sessions == 8
        assert args.shards == 2
        assert args.tenants == 2
        assert args.quota is None
        assert args.hold == 0.0

    def test_flags_parse(self):
        args = build_parser().parse_args(
            ["serve-bench", "--shards", "4", "--sessions", "16",
             "--quota", "32", "--workload", "oltp", "--quiet"])
        assert args.shards == 4 and args.sessions == 16
        assert args.quota == 32 and args.workload == "oltp"

    def test_listed_in_repro_list(self, capsys):
        assert main(["list"]) == 0
        assert "serve-bench" in capsys.readouterr().out


class TestServeBench:
    def test_reports_aggregate_and_per_tenant_surfaces(self, capsys):
        code = main(["serve-bench", "--refs", "300", "--capacity", "64",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "8 session(s)" in out
        assert "hit ratio" in out
        assert "p50" in out and "p99" in out
        assert "tenant tenant0" in out and "tenant tenant1" in out

    def test_quota_run_reports_quota_evictions(self, capsys):
        code = main(["serve-bench", "--refs", "400", "--capacity", "32",
                     "--shards", "1", "--sessions", "4", "--quota", "8",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "quota 8" in out
        assert "quota-evictions" in out

    def test_invalid_capacity_exits_two(self, capsys):
        assert main(["serve-bench", "--capacity", "1", "--shards", "2",
                     "--quiet"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_tenants_exits_two(self, capsys):
        assert main(["serve-bench", "--tenants", "0", "--quiet"]) == 2
        assert "error" in capsys.readouterr().err

    def test_live_endpoint_exposes_tenant_counters(self, capsys):
        port = free_port()
        scraped = {}

        def scrape_during_hold():
            url = f"http://127.0.0.1:{port}/metrics"
            with urllib.request.urlopen(url, timeout=5.0) as response:
                scraped["text"] = response.read().decode("utf-8")

        scraper = threading.Timer(0.05, scrape_during_hold)
        scraper.start()
        try:
            code = main(["serve-bench", "--refs", "300",
                         "--capacity", "64", "--quiet",
                         "--serve-metrics", str(port),
                         "--hold", "1.5"])
        finally:
            scraper.join()
        assert code == 0
        # The scrape may have landed mid-run or in the hold window;
        # either way the service instruments must be present.
        assert "service_requests" in scraped["text"]
        assert "service_tenant_tenant0_hits" in scraped["text"]
        assert telemetry_threads() == []


class TestTelemetryLifecycle:
    def test_failed_sampler_does_not_leak_server_thread_or_port(self):
        # --sample-resources -1 makes ResourceSampler raise *after* the
        # MetricsServer bound its port; the try/finally in the CLI must
        # still stop the server.
        port = free_port()
        with pytest.raises(ConfigurationError):
            main(["serve-bench", "--refs", "10", "--quiet",
                  "--serve-metrics", str(port),
                  "--sample-resources", "-1"])
        assert telemetry_threads() == []
        with socket.socket() as sock:  # the port is free again
            sock.bind(("127.0.0.1", port))

    def test_worker_crash_still_stops_the_telemetry_plane(self, capsys):
        import repro.service as service

        port = free_port()
        original = service.run_load

        def exploding_run_load(*args, **kwargs):
            raise KeyboardInterrupt

        service.run_load = exploding_run_load
        try:
            with pytest.raises(KeyboardInterrupt):
                main(["serve-bench", "--refs", "10", "--quiet",
                      "--serve-metrics", str(port),
                      "--sample-resources", "0.05"])
        finally:
            service.run_load = original
        assert telemetry_threads() == []
        with socket.socket() as sock:
            sock.bind(("127.0.0.1", port))
