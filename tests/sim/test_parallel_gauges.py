"""Gauge relay from forked sweep workers: serial == --jobs N visibility."""

import os

import pytest

from repro.obs import EventDispatcher, MetricsRegistry
from repro.sim import PolicySpec, fork_available, sweep_buffer_sizes
from repro.workloads import ZipfianWorkload

SPECS = [PolicySpec.lru(), PolicySpec.lruk(2)]


def _sweep(jobs):
    dispatcher = EventDispatcher()
    dispatcher.metrics = MetricsRegistry()
    workload = ZipfianWorkload(n=100)
    sweep_buffer_sizes(workload, SPECS, [8, 16], warmup=500,
                       measured=1500, seed=3, repetitions=1, jobs=jobs,
                       observability=dispatcher)
    return dispatcher.metrics


class TestGaugeRelay:
    def test_registry_gauge_values_excludes_callable_gauges(self):
        registry = MetricsRegistry()
        registry.set_gauge("plain", 4.0)
        registry.gauge("live", lambda: 9.0)
        assert registry.gauge_values() == {"plain": 4.0}

    def test_merge_is_last_write_wins_with_provenance(self):
        registry = MetricsRegistry()
        registry.merge_gauges({"g": 1.0}, worker="100")
        registry.merge_gauges({"g": 2.0}, worker="200")
        assert registry.snapshot()["g"] == 2.0
        assert registry.gauge_source("g") == "200"
        assert registry.gauge_source("unknown") is None

    def test_merge_never_overwrites_a_live_parent_gauge(self):
        registry = MetricsRegistry()
        registry.gauge("live", lambda: 42.0)
        registry.merge_gauges({"live": 0.0}, worker="100")
        assert registry.snapshot()["live"] == 42.0
        assert registry.gauge_source("live") is None

    def test_serial_sweep_publishes_run_gauges(self):
        registry = _sweep(jobs=1)
        snapshot = registry.snapshot()
        assert 0.0 <= snapshot["protocol.last_run_hit_ratio"] <= 1.0
        assert snapshot["protocol.last_run_evictions"] >= 0.0
        assert snapshot["sweep.cells_total"] == 4.0
        assert snapshot["sweep.cells_done"] == 4.0

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel engine needs fork")
    def test_worker_gauges_visible_under_jobs(self):
        """Satellite acceptance: the same gauge names are visible after a
        serial and a --jobs 2 sweep, with worker provenance attached."""
        serial = _sweep(jobs=1)
        fanned = _sweep(jobs=2)
        serial_gauges = set(serial.gauge_values())
        fanned_gauges = set(fanned.gauge_values())
        assert serial_gauges == fanned_gauges
        assert "protocol.last_run_hit_ratio" in fanned_gauges

        # Relayed values carry which worker pid last wrote them; the
        # parent never relays to itself.
        source = fanned.gauge_source("protocol.last_run_hit_ratio")
        assert source is not None and source.isdigit()
        assert int(source) != os.getpid()
        assert serial.gauge_source("protocol.last_run_hit_ratio") is None

        # Last-write-wins still lands a real measurement, and progress
        # gauges total up identically.
        value = fanned.snapshot()["protocol.last_run_hit_ratio"]
        assert 0.0 <= value <= 1.0
        assert fanned.snapshot()["sweep.cells_done"] == \
            serial.snapshot()["sweep.cells_done"]
