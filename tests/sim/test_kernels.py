"""Fused simulation kernels are decision-identical to the object path.

The kernel contract (:mod:`repro.policies.kernel`) promises the same
hit/miss sequence, the same evictions, and the same final policy state
as driving :meth:`CacheSimulator.access_page` once per reference — and
that the driver silently falls back to the object path whenever any
observability channel is attached. Both halves are enforced here:
a hypothesis equivalence matrix across policies x capacities x CRP/RIP,
and bypass regressions for every observation channel.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.core.kernel import make_lruk_batch_kernel
from repro.obs import (
    EventDispatcher,
    ProfiledPolicy,
    ProvenanceRecorder,
    RingBufferSink,
)
from repro.obs import trace as obs_trace
from repro.obs.trace import Tracer
from repro.policies import kernel as policy_kernel
from repro.policies import make_policy
from repro.sim import CachedTrace, CacheSimulator, measure_hit_ratio
from repro.sim import cache as sim_cache
from repro.workloads import ZipfianWorkload
from repro.workloads.vectorized import numpy_or_none

needs_numpy = pytest.mark.skipif(
    numpy_or_none() is None,
    reason="batch kernels decline without numpy (covered by the "
           "fallback tests)")

PAGES = st.lists(st.integers(min_value=1, max_value=30),
                 min_size=5, max_size=300)

#: label -> factory, every policy family that ships a fused kernel.
KERNEL_POLICIES = {
    "lru": lambda: make_policy("lru"),
    "fifo": lambda: make_policy("fifo"),
    "clock": lambda: make_policy("clock"),
    "lruk": lambda: LRUKPolicy(k=2),
}


def object_run(policy, pages, warmup, capacity):
    """The reference semantics: per-reference fast path + boundary."""
    simulator = CacheSimulator(policy, capacity)
    for page in pages[:warmup]:
        simulator.access_page(page)
    simulator.start_measurement()
    for page in pages[warmup:]:
        simulator.access_page(page)
    return simulator


def kernel_run(policy, pages, warmup, capacity):
    """The fused path; asserts the kernel actually engaged."""
    simulator = CacheSimulator(policy, capacity)
    assert simulator.run_fused(pages, warmup)
    return simulator


def assert_identical(sim_a, sim_b):
    """Every driver-visible observable matches between two simulators."""
    assert sim_a.counter.hits == sim_b.counter.hits
    assert sim_a.counter.misses == sim_b.counter.misses
    assert sim_a.warmup_counter.hits == sim_b.warmup_counter.hits
    assert sim_a.warmup_counter.misses == sim_b.warmup_counter.misses
    assert sim_a.evictions == sim_b.evictions
    assert sim_a.resident_pages == sim_b.resident_pages
    assert sim_a._admitted_at == sim_b._admitted_at
    assert sim_a.now == sim_b.now


def assert_lruk_state_identical(pol_a, pol_b):
    """LRU-K internals: stats, history population, heap multiset."""
    assert pol_a.stats == pol_b.stats
    blocks_a, blocks_b = pol_a.history._blocks, pol_b.history._blocks
    assert blocks_a.keys() == blocks_b.keys()
    for page, block in blocks_a.items():
        other = blocks_b[page]
        assert block.hist == other.hist, page
        assert block.last == other.last, page
    assert sorted(pol_a._heap) == sorted(pol_b._heap)
    assert pol_a.history.purged_blocks == pol_b.history.purged_blocks
    assert (pol_a.history._touches_since_purge
            == pol_b.history._touches_since_purge)
    assert sorted(pol_a.history._expiry) == sorted(pol_b.history._expiry)


class TestLRUKKernelEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(pages=PAGES,
           capacity=st.integers(min_value=1, max_value=8),
           crp=st.sampled_from([0, 3]),
           rip=st.sampled_from([None, 40]),
           k=st.sampled_from([2, 3]))
    def test_matches_object_path(self, pages, capacity, crp, rip, k):
        warmup = len(pages) // 3

        def build():
            return LRUKPolicy(k=k, correlated_reference_period=crp,
                              retained_information_period=rip)

        sim_a = object_run(build(), pages, warmup, capacity)
        sim_b = kernel_run(build(), pages, warmup, capacity)
        assert_identical(sim_a, sim_b)
        assert_lruk_state_identical(sim_a.policy, sim_b.policy)

    def test_hit_sequence_identical_at_every_prefix(self):
        """Counter equality at every prefix pins the full hit *sequence*.

        The fused loop is prefix-closed (reference i is processed
        identically whatever follows it), so equal cumulative counters at
        each prefix length imply the per-reference hit/miss decisions
        agree everywhere, not just in total.
        """
        workload = ZipfianWorkload(n=40)
        pages = list(workload.page_ids(250, seed=13))
        hits = []
        simulator = CacheSimulator(
            LRUKPolicy(k=2, correlated_reference_period=4,
                       retained_information_period=60), 6)
        for page in pages:
            hits.append(simulator.access_page(page))
        cumulative = 0
        object_prefix_hits = []
        for hit in hits:
            cumulative += hit
            object_prefix_hits.append(cumulative)
        for prefix in range(1, len(pages) + 1, 7):
            sim = kernel_run(
                LRUKPolicy(k=2, correlated_reference_period=4,
                           retained_information_period=60),
                pages[:prefix], 0, 6)
            assert sim.counter.hits == object_prefix_hits[prefix - 1], prefix


class TestSimplePolicyKernelEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(pages=PAGES,
           capacity=st.integers(min_value=1, max_value=8),
           name=st.sampled_from(["lru", "fifo", "clock"]))
    def test_matches_object_path(self, pages, capacity, name):
        warmup = len(pages) // 3
        sim_a = object_run(make_policy(name), pages, warmup, capacity)
        sim_b = kernel_run(make_policy(name), pages, warmup, capacity)
        assert_identical(sim_a, sim_b)

    @pytest.mark.parametrize("name", sorted(KERNEL_POLICIES))
    def test_policy_keeps_working_after_kernel_run(self, name):
        """The flushed state must support further per-reference driving."""
        workload = ZipfianWorkload(n=50)
        pages = list(workload.page_ids(400, seed=3))
        split = 200
        sim_a = CacheSimulator(KERNEL_POLICIES[name](), 8)
        for page in pages:
            sim_a.access_page(page)
        sim_b = CacheSimulator(KERNEL_POLICIES[name](), 8)
        assert sim_b.run_fused(pages[:split], 0)
        for page in pages[split:]:
            sim_b.access_page(page)
        assert sim_a.evictions == sim_b.evictions
        assert sim_a.resident_pages == sim_b.resident_pages
        total_a = sim_a.counter.hits
        total_b = sim_b.warmup_counter.hits + sim_b.counter.hits
        assert total_a == total_b


class TestMeasureHitRatioDispatch:
    def trace(self, count=1200, seed=7):
        return CachedTrace.materialize(ZipfianWorkload(n=80), count, seed)

    def test_plain_trace_and_reference_list_agree(self):
        trace = self.trace()
        kernel_sim = measure_hit_ratio(
            LRUKPolicy(k=2, correlated_reference_period=5), trace, 20, 300)
        object_sim = measure_hit_ratio(
            LRUKPolicy(k=2, correlated_reference_period=5),
            trace.references(), 20, 300)
        assert_identical(kernel_sim, object_sim)

    def test_results_identical_with_and_without_sinks(self):
        """Attaching a sink switches paths but must not change results."""
        trace = self.trace()
        plain = measure_hit_ratio(LRUKPolicy(k=2), trace, 20, 300)
        dispatcher = EventDispatcher()
        dispatcher.attach(RingBufferSink())
        observed = measure_hit_ratio(LRUKPolicy(k=2), trace, 20, 300,
                                     observability=dispatcher)
        assert_identical(plain, observed)
        assert_lruk_state_identical(plain.policy, observed.policy)


class TestKernelBypass:
    """Every observation channel must force the object path."""

    def pages(self):
        return list(ZipfianWorkload(n=30).page_ids(200, seed=1))

    def test_event_sinks_bypass(self):
        dispatcher = EventDispatcher()
        dispatcher.attach(RingBufferSink())
        simulator = CacheSimulator(LRUKPolicy(k=2), 8,
                                   observability=dispatcher)
        assert not simulator.run_fused(self.pages(), 0)

    def test_eviction_log_bypasses(self):
        simulator = CacheSimulator(LRUKPolicy(k=2), 8,
                                   record_evictions=True)
        assert not simulator.run_fused(self.pages(), 0)

    def test_provenance_bypasses(self):
        policy = LRUKPolicy(k=2)
        policy.provenance = ProvenanceRecorder()
        simulator = CacheSimulator(policy, 8)
        assert not simulator.run_fused(self.pages(), 0)

    def test_ambient_tracer_bypasses(self):
        simulator = CacheSimulator(LRUKPolicy(k=2), 8)
        with obs_trace.activate(Tracer()):
            assert not simulator.run_fused(self.pages(), 0)
        # Outside the span the same simulator is eligible again.
        assert simulator.run_fused(self.pages(), 0)

    def test_non_fresh_simulator_bypasses(self):
        simulator = CacheSimulator(LRUKPolicy(k=2), 8)
        simulator.access_page(1)
        assert not simulator.run_fused(self.pages(), 0)

    def test_profiled_policy_offers_no_kernel(self):
        profiled = ProfiledPolicy(LRUKPolicy(k=2))
        assert profiled.make_kernel(8) is None
        simulator = CacheSimulator(profiled, 8)
        assert not simulator.run_fused(self.pages(), 0)


class TestUnsupportedConfigurations:
    """Configurations the fused loop does not replicate yield no kernel."""

    @pytest.mark.parametrize("kwargs", [
        {"selection": "scan"},
        {"distinguish_processes": True},
        {"max_history_blocks": 64},
    ])
    def test_lruk_variants_offer_no_kernel(self, kwargs):
        assert LRUKPolicy(k=2, **kwargs).make_kernel(8) is None

    def test_policy_with_prior_residents_offers_no_kernel(self):
        policy = LRUKPolicy(k=2)
        simulator = CacheSimulator(policy, 8)
        simulator.access_page(1)
        assert policy.make_kernel(8) is None

    @pytest.mark.parametrize("name", ["mru", "gclock", "lfu"])
    def test_base_policies_default_to_none(self, name):
        assert make_policy(name).make_kernel(8) is None


def batch_run(policy, pages, warmup, capacity):
    """The batch path via run_fused; asserts run skipping engaged.

    The dispatch threshold and the trace probes are forced open so the
    short property-test traces reach the batch kernel, and the scalar
    kernel factory is stubbed to raise — a silent runtime decline would
    otherwise fall back and vacuously pass the equivalence assertions.
    """
    old_min = sim_cache.BATCH_MIN_REFS
    old_probe = policy_kernel.BATCH_PROBE_REFS
    sim_cache.BATCH_MIN_REFS = 0
    policy_kernel.BATCH_PROBE_REFS = 0

    def no_scalar(capacity):
        raise AssertionError("batch kernel declined; scalar fallback ran")

    policy.make_kernel = no_scalar
    try:
        simulator = CacheSimulator(policy, capacity)
        assert simulator.run_fused(pages, warmup)
        return simulator
    finally:
        del policy.make_kernel
        sim_cache.BATCH_MIN_REFS = old_min
        policy_kernel.BATCH_PROBE_REFS = old_probe


@needs_numpy
class TestBatchKernelEquivalence:
    """Run-skipping batch kernels are decision-identical to the object
    path — same driver observables *and* same policy internals, so a
    batch run can be continued per-reference afterwards."""

    @settings(max_examples=60, deadline=None)
    @given(pages=PAGES,
           capacity=st.integers(min_value=1, max_value=8),
           warmup_fraction=st.sampled_from([0.0, 0.33, 1.0]))
    def test_lru_matches_object_path(self, pages, capacity,
                                     warmup_fraction):
        warmup = int(len(pages) * warmup_fraction)
        sim_a = object_run(make_policy("lru"), pages, warmup, capacity)
        sim_b = batch_run(make_policy("lru"), pages, warmup, capacity)
        assert_identical(sim_a, sim_b)
        assert (list(sim_a.policy._order) == list(sim_b.policy._order))

    @settings(max_examples=60, deadline=None)
    @given(pages=PAGES,
           capacity=st.integers(min_value=1, max_value=8),
           crp=st.sampled_from([1, 3, 100]),
           k=st.sampled_from([2, 3]))
    def test_lruk_matches_object_path(self, pages, capacity, crp, k):
        warmup = len(pages) // 3

        def build():
            return LRUKPolicy(k=k, correlated_reference_period=crp)

        sim_a = object_run(build(), pages, warmup, capacity)
        sim_b = batch_run(build(), pages, warmup, capacity)
        assert_identical(sim_a, sim_b)
        assert_lruk_state_identical(sim_a.policy, sim_b.policy)

    @settings(max_examples=40, deadline=None)
    @given(pages=PAGES, capacity=st.integers(min_value=1, max_value=8))
    def test_lruk_crp_zero_kernel_function(self, pages, capacity):
        """``crp=0`` is below the policy's dispatch heuristic but the
        kernel function itself must still be exact — drive it directly."""
        old_probe = policy_kernel.BATCH_PROBE_REFS
        policy_kernel.BATCH_PROBE_REFS = 0
        try:
            policy = LRUKPolicy(k=2, correlated_reference_period=0)
            kernel = make_lruk_batch_kernel(policy, capacity)
            assert kernel is not None
            result = kernel(pages, len(pages) // 3)
        finally:
            policy_kernel.BATCH_PROBE_REFS = old_probe
        assert result is not None
        reference = object_run(
            LRUKPolicy(k=2, correlated_reference_period=0),
            pages, len(pages) // 3, capacity)
        assert result.warmup_hits == reference.warmup_counter.hits
        assert result.warmup_misses == reference.warmup_counter.misses
        assert result.hits == reference.counter.hits
        assert result.misses == reference.counter.misses
        assert result.evictions == reference.evictions
        assert result.resident == reference._admitted_at
        assert result.now == reference.now
        assert_lruk_state_identical(reference.policy, policy)

    def test_policy_keeps_working_after_batch_run(self):
        """The flushed state must support further per-reference driving."""
        pages = list(ZipfianWorkload(n=50).page_ids(400, seed=3))
        split = 200
        for build in (lambda: make_policy("lru"),
                      lambda: LRUKPolicy(k=2,
                                         correlated_reference_period=5)):
            sim_a = CacheSimulator(build(), 8)
            for page in pages:
                sim_a.access_page(page)
            sim_b = batch_run(build(), pages[:split], 0, 8)
            for page in pages[split:]:
                sim_b.access_page(page)
            assert sim_a.evictions == sim_b.evictions
            assert sim_a.resident_pages == sim_b.resident_pages
            total_a = sim_a.counter.hits
            total_b = sim_b.warmup_counter.hits + sim_b.counter.hits
            assert total_a == total_b


class TestBatchDispatch:
    """run_fused routes big traces to the batch kernel and treats every
    decline — threshold, configuration, or runtime — as a clean fall
    through to the scalar kernel."""

    def trace(self, count=400):
        return list(ZipfianWorkload(n=30).page_ids(count, seed=1))

    def counting_policy(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5)
        calls = []
        original = policy.make_batch_kernel

        def counted(capacity):
            calls.append(capacity)
            return original(capacity)

        policy.make_batch_kernel = counted
        return policy, calls

    def test_big_traces_offer_the_batch_kernel(self, monkeypatch):
        monkeypatch.setattr(sim_cache, "BATCH_MIN_REFS", 100)
        policy, calls = self.counting_policy()
        assert CacheSimulator(policy, 8).run_fused(self.trace(), 0)
        assert calls == [8]

    def test_small_traces_skip_the_batch_path(self, monkeypatch):
        monkeypatch.setattr(sim_cache, "BATCH_MIN_REFS", 100_000)
        policy, calls = self.counting_policy()
        assert CacheSimulator(policy, 8).run_fused(self.trace(), 0)
        assert calls == []

    def test_runtime_decline_falls_back_identically(self, monkeypatch):
        """Ids past BATCH_MAX_PAGE force a runtime decline; the scalar
        kernel must then carry the run with identical results."""
        monkeypatch.setattr(sim_cache, "BATCH_MIN_REFS", 0)
        pages = self.trace() + [policy_kernel.BATCH_MAX_PAGE + 1]
        fused = CacheSimulator(
            LRUKPolicy(k=2, correlated_reference_period=5), 8)
        assert fused.run_fused(pages, 20)
        reference = object_run(
            LRUKPolicy(k=2, correlated_reference_period=5), pages, 20, 8)
        assert_identical(reference, fused)
        assert_lruk_state_identical(reference.policy, fused.policy)

    @needs_numpy
    def test_declined_kernel_mutates_nothing(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5)
        kernel = policy.make_batch_kernel(8)
        assert kernel is not None
        assert kernel([1, 2, -3, 4] * 50, 0) is None
        assert not policy._resident
        assert not policy._heap
        assert not policy.history._blocks
        assert policy.stats == type(policy.stats)()

    @needs_numpy
    def test_uncorrelated_probe_declines(self, monkeypatch):
        """A trace whose hits are nearly all uncorrelated (every gap
        exceeds the CRP) belongs on the scalar kernel."""
        monkeypatch.setattr(policy_kernel, "BATCH_PROBE_REFS", 64)
        pages = list(range(50)) * 6  # every revisit gap is 50 > crp=1
        policy = LRUKPolicy(k=2, correlated_reference_period=1)
        kernel = policy.make_batch_kernel(60)
        assert kernel is not None
        assert kernel(pages, 0) is None
        assert not policy._resident

    def test_no_numpy_falls_back_identically(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        monkeypatch.setattr(sim_cache, "BATCH_MIN_REFS", 0)
        pages = self.trace()
        fused = CacheSimulator(
            LRUKPolicy(k=2, correlated_reference_period=5), 8)
        assert fused.run_fused(pages, 20)
        reference = object_run(
            LRUKPolicy(k=2, correlated_reference_period=5), pages, 20, 8)
        assert_identical(reference, fused)

    def test_profiled_policy_offers_no_batch_kernel(self):
        assert ProfiledPolicy(LRUKPolicy(k=2)).make_batch_kernel(8) is None

    @pytest.mark.parametrize("kwargs", [
        {"selection": "scan"},
        {"distinguish_processes": True},
        {"max_history_blocks": 64},
        {"retained_information_period": 40},
        {"correlated_reference_period": 0},
    ])
    def test_lruk_variants_offer_no_batch_kernel(self, kwargs):
        kwargs = {"correlated_reference_period": 5, **kwargs}
        assert LRUKPolicy(k=2, **kwargs).make_batch_kernel(8) is None

    @pytest.mark.parametrize("name", ["fifo", "clock", "mru", "lfu"])
    def test_other_policies_default_to_none(self, name):
        assert make_policy(name).make_batch_kernel(8) is None
