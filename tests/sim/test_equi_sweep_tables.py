"""Tests for equi-effective search, sweeps, tables, and experiments."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import (
    ExperimentSpec,
    PolicySpec,
    Table,
    equi_effective_buffer_size,
    equi_effective_ratio,
    format_table,
    run_experiment,
    sweep_buffer_sizes,
)
from repro.workloads import TwoPoolWorkload


class TestEquiEffectiveSearch:
    def test_finds_threshold_of_monotone_function(self):
        # Synthetic hit ratio: saturating curve 1 - 1/(1+B/10).
        evaluate = lambda b: 1.0 - 1.0 / (1.0 + b / 10.0)
        found = equi_effective_buffer_size(evaluate, target_hit_ratio=0.5,
                                           low=1, high=10_000)
        assert found == 10  # first B with ratio >= 0.5

    def test_exact_boundary(self):
        evaluate = lambda b: min(1.0, b / 100.0)
        assert equi_effective_buffer_size(evaluate, 0.25) == 25

    def test_unreachable_target_raises(self):
        evaluate = lambda b: 0.3
        with pytest.raises(SimulationError):
            equi_effective_buffer_size(evaluate, 0.9, high=256)

    def test_bad_arguments(self):
        with pytest.raises(ConfigurationError):
            equi_effective_buffer_size(lambda b: 0.5, target_hit_ratio=1.5)
        with pytest.raises(ConfigurationError):
            equi_effective_buffer_size(lambda b: 0.5, 0.5, low=0)

    def test_caches_probes(self):
        calls = []

        def evaluate(b):
            calls.append(b)
            return min(1.0, b / 64.0)

        equi_effective_buffer_size(evaluate, 0.5, low=1, high=1024)
        assert len(calls) == len(set(calls))  # no capacity probed twice

    def test_lru2_vs_lru1_ratio_exceeds_one(self):
        workload = TwoPoolWorkload(n1=20, n2=400)
        ratio = equi_effective_ratio(
            workload, baseline=PolicySpec.lru(), improved=PolicySpec.lruk(2),
            capacity=20, warmup=1000, measured=4000, seed=1)
        assert ratio > 1.2


class TestSweep:
    def test_sweep_shape(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        cells = sweep_buffer_sizes(
            workload, [PolicySpec.lru(), PolicySpec.lruk(2)],
            capacities=[10, 20], warmup=200, measured=800)
        assert [cell.capacity for cell in cells] == [10, 20]
        for cell in cells:
            assert set(cell.results) == {"LRU-1", "LRU-2"}

    def test_duplicate_labels_rejected(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        with pytest.raises(ConfigurationError):
            sweep_buffer_sizes(workload,
                               [PolicySpec.lru(), PolicySpec.lru()],
                               [10], 10, 10)

    def test_progress_callback_invoked(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        lines = []
        sweep_buffer_sizes(workload, [PolicySpec.lru()], [10],
                           warmup=100, measured=200,
                           progress=lines.append)
        assert lines


class TestTables:
    def test_render_alignment(self):
        table = Table(title="T", columns=["B", "ratio"])
        table.add_row(100, 0.5)
        table.add_row(2000, 0.75)
        rendered = format_table(table)
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert "B" in lines[1] and "ratio" in lines[1]
        assert "0.500" in rendered and "0.750" in rendered

    def test_row_width_validated(self):
        table = Table(title="T", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            table.add_row(1)

    def test_none_renders_dash(self):
        table = Table(title="", columns=["x"])
        table.add_row(None)
        assert "-" in table.render()

    def test_column_extraction(self):
        table = Table(title="", columns=["B", "C"])
        table.add_row(1, 0.1)
        table.add_row(2, 0.2)
        assert table.column("B") == [1, 2]


class TestExperiment:
    def test_full_experiment_with_equi_effective(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        spec = ExperimentSpec(
            name="mini",
            workload=workload,
            policies=[PolicySpec.lru(), PolicySpec.lruk(2)],
            capacities=[10, 20],
            warmup=500, measured=2000, repetitions=1,
            equi_effective=("LRU-1", "LRU-2"),
            equi_effective_high=110)
        result = run_experiment(spec)
        table = result.to_table()
        assert table.columns[-1] == "B(LRU-1)/B(LRU-2)"
        for capacity in (10, 20):
            ratio = result.equi_effective_ratios[capacity]
            assert ratio is None or ratio >= 1.0

    def test_equi_effective_labels_validated(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        with pytest.raises(ConfigurationError):
            ExperimentSpec(name="bad", workload=workload,
                           policies=[PolicySpec.lru()],
                           capacities=[10], warmup=10, measured=10,
                           equi_effective=("LRU-1", "LRU-9"))

    def test_hit_ratios_accessor(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        spec = ExperimentSpec(
            name="mini", workload=workload,
            policies=[PolicySpec.lru()], capacities=[5, 10, 20],
            warmup=200, measured=500, repetitions=1)
        result = run_experiment(spec)
        ratios = result.hit_ratios("LRU-1")
        assert len(ratios) == 3
        # Hit ratio grows with buffer size (within noise).
        assert ratios[0] <= ratios[-1] + 0.05
