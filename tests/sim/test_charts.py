"""Tests for ASCII charts."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import ascii_chart, chart_experiment


class TestAsciiChart:
    def test_basic_rendering(self):
        chart = ascii_chart([10, 20, 30], {"LRU": [0.1, 0.5, 0.9]},
                            width=30, height=8)
        assert "o" in chart
        assert "o=LRU" in chart
        assert "B: 10 .. 30" in chart

    def test_multiple_series_get_distinct_glyphs(self):
        chart = ascii_chart([1, 2], {"a": [0.1, 0.2], "b": [0.8, 0.9]},
                            width=20, height=6)
        assert "o=a" in chart
        assert "x=b" in chart

    def test_extremes_at_grid_edges(self):
        chart = ascii_chart([0, 100], {"s": [0.0, 1.0]},
                            width=20, height=5, y_min=0.0, y_max=1.0)
        lines = chart.splitlines()
        assert lines[0].lstrip().startswith("1.000")   # top margin label
        assert lines[4].lstrip().startswith("0.000")   # bottom margin
        assert lines[0].rstrip().endswith("o")          # max point top-right
        assert lines[4].replace("|", " ").strip().startswith("0.000 o"[0:1]) or "o" in lines[4]

    def test_mismatched_series_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([1, 2], {"s": [0.5]})

    def test_empty_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([], {"s": []})
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {})

    def test_too_small_grid_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_chart([1], {"s": [0.5]}, width=5, height=2)

    def test_flat_series_does_not_crash(self):
        chart = ascii_chart([1, 2, 3], {"flat": [0.5, 0.5, 0.5]},
                            width=15, height=5)
        assert "flat" in chart

    def test_values_clamped_into_range(self):
        chart = ascii_chart([1, 2], {"s": [5.0, -3.0]},
                            width=15, height=5, y_min=0.0, y_max=1.0)
        assert "s" in chart  # no exception; points land on the borders


class TestChartExperiment:
    def test_chart_from_experiment_result(self):
        from repro.experiments import table_4_1_spec
        from repro.sim import run_experiment
        spec = table_4_1_spec(scale=0.3, capacities=[60, 120],
                              repetitions=1, include_lru3=False,
                              include_equi_effective=False)
        result = run_experiment(spec)
        chart = chart_experiment(result, width=40, height=8)
        assert "LRU-1" in chart
        assert "LRU-2" in chart
        assert "B: 60 .. 120" in chart
