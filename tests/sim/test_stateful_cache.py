"""Stateful property test: CacheSimulator + LRU against a textbook model."""

from collections import OrderedDict

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.policies import LRUPolicy
from repro.sim import CacheSimulator

CAPACITY = 4


class LruCacheMachine(RuleBasedStateMachine):
    """The simulator must track a five-line OrderedDict LRU oracle."""

    def __init__(self):
        super().__init__()
        self.simulator = CacheSimulator(LRUPolicy(), CAPACITY)
        self.model = OrderedDict()
        self.model_hits = 0
        self.model_misses = 0

    @rule(page=st.integers(min_value=0, max_value=9))
    def access(self, page):
        outcome = self.simulator.access(page)
        if page in self.model:
            self.model.move_to_end(page)
            self.model_hits += 1
            assert outcome.hit
            assert outcome.evicted is None
        else:
            self.model_misses += 1
            assert not outcome.hit
            if len(self.model) >= CAPACITY:
                victim, _ = self.model.popitem(last=False)
                assert outcome.evicted == victim
            else:
                assert outcome.evicted is None
            self.model[page] = None

    @rule()
    def shrink_then_grow(self):
        # Dynamic resizing must evict in LRU order too.
        if len(self.model) <= 1:
            return
        self.simulator.set_capacity(len(self.model) - 1)
        victim = next(iter(self.model))
        del self.model[victim]
        self.simulator.set_capacity(CAPACITY)

    @invariant()
    def state_matches(self):
        assert self.simulator.resident_pages == set(self.model)
        assert self.simulator.counter.hits == self.model_hits
        assert self.simulator.counter.misses == self.model_misses


TestLruCacheStateful = LruCacheMachine.TestCase
TestLruCacheStateful.settings = settings(
    max_examples=50, stateful_step_count=60, deadline=None)
