"""Tests for the cache simulator and the measurement protocol."""

import pytest

from repro.errors import ConfigurationError
from repro.policies import LRUPolicy
from repro.sim import CacheSimulator, PolicySpec, measure_hit_ratio
from repro.sim.runner import RunContext, run_paper_protocol
from repro.types import AccessKind, Reference
from repro.workloads import TwoPoolWorkload


class TestCacheSimulator:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            CacheSimulator(LRUPolicy(), capacity=0)

    def test_outcome_reports_eviction(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=1)
        simulator.access(1)
        outcome = simulator.access(2)
        assert outcome.evicted == 1
        assert not outcome.hit
        assert outcome.time == 2

    def test_write_marks_dirty_and_counts_writeback(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=1)
        simulator.access(Reference(page=1, kind=AccessKind.WRITE))
        assert simulator.is_dirty(1)
        outcome = simulator.access(2)
        assert outcome.evicted_dirty
        assert simulator.writebacks == 1

    def test_read_hit_keeps_dirty_state(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=2)
        simulator.access(Reference(page=1, kind=AccessKind.WRITE))
        simulator.access(Reference(page=1, kind=AccessKind.READ))
        assert simulator.is_dirty(1)

    def test_eviction_log_optional(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=1,
                                   record_evictions=True)
        simulator.access(1)
        simulator.access(2)
        assert len(simulator.eviction_log) == 1
        assert simulator.eviction_log[0].evicted == 1

    def test_run_consumes_iterable(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=2)
        counter = simulator.run([1, 2, 1, 2])
        assert counter.hit_ratio == 0.5

    def test_clock_matches_reference_count(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=2)
        simulator.run([5, 6, 7])
        assert simulator.now == 3


class TestMeasureHitRatio:
    def test_warmup_excluded_from_measurement(self):
        refs = [Reference(page=p) for p in [1, 2, 1, 2, 1, 2]]
        simulator = measure_hit_ratio(LRUPolicy(), refs, capacity=2,
                                      warmup=2)
        assert simulator.hit_ratio == 1.0
        assert simulator.warmup_counter.hit_ratio == 0.0

    def test_warmup_must_leave_measurement_window(self):
        refs = [Reference(page=1)]
        with pytest.raises(ConfigurationError):
            measure_hit_ratio(LRUPolicy(), refs, capacity=1, warmup=1)


class TestPolicySpec:
    def test_registry_spec_builds(self):
        spec = PolicySpec.registry("LRU-1", "lru")
        policy = spec.build(RunContext(capacity=4))
        assert type(policy).__name__ == "LRUPolicy"

    def test_lruk_spec_label_and_params(self):
        spec = PolicySpec.lruk(3, correlated_reference_period=5)
        assert spec.label == "LRU-3"
        policy = spec.build(RunContext(capacity=4))
        assert policy.k == 3
        assert policy.crp == 5

    def test_a0_needs_workload(self):
        spec = PolicySpec.a0()
        with pytest.raises(ConfigurationError):
            spec.build(RunContext(capacity=4))

    def test_opt_needs_trace(self):
        spec = PolicySpec.opt()
        with pytest.raises(ConfigurationError):
            spec.build(RunContext(capacity=4))

    def test_capacity_aware_spec(self):
        spec = PolicySpec.capacity_aware("2Q", "2q")
        policy = spec.build(RunContext(capacity=32))
        assert policy.capacity == 32


class TestRunPaperProtocol:
    def test_repetitions_average(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        result = run_paper_protocol(workload, PolicySpec.lru(), capacity=20,
                                    warmup=200, measured=800, seed=0,
                                    repetitions=3)
        assert len(result.runs) == 3
        assert result.interval.count == 3
        assert 0.0 < result.hit_ratio < 1.0
        seeds = {run.seed for run in result.runs}
        assert len(seeds) == 3

    def test_deterministic_given_seed(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        a = run_paper_protocol(workload, PolicySpec.lru(), 20, 200, 800,
                               seed=5)
        b = run_paper_protocol(workload, PolicySpec.lru(), 20, 200, 800,
                               seed=5)
        assert a.hit_ratio == b.hit_ratio

    def test_oracle_specs_run(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        a0 = run_paper_protocol(workload, PolicySpec.a0(), 20, 200, 800)
        opt = run_paper_protocol(workload, PolicySpec.opt(), 20, 200, 800)
        lru = run_paper_protocol(workload, PolicySpec.lru(), 20, 200, 800)
        # Oracles dominate LRU on this workload.
        assert a0.hit_ratio >= lru.hit_ratio - 0.02
        assert opt.hit_ratio >= a0.hit_ratio - 0.02

    def test_rejects_zero_repetitions(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        with pytest.raises(ConfigurationError):
            run_paper_protocol(workload, PolicySpec.lru(), 20, 10, 10,
                               repetitions=0)
