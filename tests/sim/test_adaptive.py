"""Tests for the dynamic frame/history-block exchange (paper Section 5)."""

import pytest

from repro.core import LRUKPolicy
from repro.errors import ConfigurationError
from repro.policies import LRUPolicy
from repro.sim import AdaptiveCacheSimulator, CacheSimulator
from repro.workloads import MovingHotspotWorkload, TwoPoolWorkload


def make(budget=120.0, **kwargs):
    policy = LRUKPolicy(k=2,
                        retained_information_period=kwargs.pop("rip", 2000))
    return AdaptiveCacheSimulator(policy, memory_budget=budget, **kwargs)


class TestConstruction:
    def test_requires_lruk(self):
        with pytest.raises(ConfigurationError):
            AdaptiveCacheSimulator(LRUPolicy(), memory_budget=100)

    def test_rejects_bad_parameters(self):
        policy = LRUKPolicy(k=2)
        with pytest.raises(ConfigurationError):
            AdaptiveCacheSimulator(policy, memory_budget=1, min_frames=5)
        with pytest.raises(ConfigurationError):
            AdaptiveCacheSimulator(policy, memory_budget=100, block_cost=0)
        with pytest.raises(ConfigurationError):
            AdaptiveCacheSimulator(policy, memory_budget=100,
                                   max_history_fraction=1.0)

    def test_guardrail_bounds_history(self):
        simulator = make(budget=100.0, block_cost=0.01,
                         max_history_fraction=0.4)
        assert simulator.policy.max_history_blocks == 4000


class TestExchange:
    def test_history_growth_releases_frames(self):
        simulator = make(budget=100.0, block_cost=0.05,
                         adjust_interval=16)
        workload = TwoPoolWorkload(n1=50, n2=5000)
        for reference in workload.references(6000, seed=1):
            simulator.access(reference)
        # Thousands of history blocks at 0.05 frames each must have
        # shrunk the frame count visibly below the initial 100.
        assert simulator.capacity < 100
        assert simulator.adjustments > 0
        assert simulator.min_capacity_seen < 100

    def test_purges_turn_history_back_into_frames(self):
        # A tiny RIP purges blocks aggressively; after a cold burst the
        # frame count recovers.
        simulator = make(budget=80.0, block_cost=0.05, rip=200,
                         adjust_interval=16)
        workload = TwoPoolWorkload(n1=20, n2=4000)
        for reference in workload.references(3000, seed=2):
            simulator.access(reference)
        low_point = simulator.min_capacity_seen
        # Drive a quiet phase (few new pages) so purges dominate.
        for _ in range(3000):
            simulator.access(1)
        simulator.policy.history.purge(
            simulator.now, simulator.policy._resident.__contains__)
        simulator.rebalance()
        assert simulator.capacity >= low_point

    def test_budget_respected_at_every_rebalance(self):
        simulator = make(budget=60.0, block_cost=0.02, adjust_interval=32)
        workload = TwoPoolWorkload(n1=30, n2=2000)
        for index, reference in enumerate(workload.references(4000, seed=3)):
            simulator.access(reference)
            if index % 256 == 0:
                simulator.assert_within_budget()

    def test_min_frames_floor_holds(self):
        simulator = make(budget=20.0, block_cost=0.5, min_frames=5,
                         max_history_fraction=0.9, adjust_interval=8)
        workload = TwoPoolWorkload(n1=10, n2=1000)
        for reference in workload.references(2000, seed=4):
            simulator.access(reference)
        assert simulator.capacity >= 5

    def test_shrinking_evicts_policy_victims(self):
        simulator = make(budget=50.0, adjust_interval=10 ** 9)
        for page in range(40):
            simulator.access(page)
        resident_before = len(simulator.resident_pages)
        simulator.set_capacity(10)
        assert len(simulator.resident_pages) == 10
        assert resident_before == 40


class TestEndToEndBenefit:
    def test_adaptive_beats_historyless_baseline_at_same_budget(self):
        """The point of the Section 5 idea: spending a slice of the
        budget on history beats spending everything on frames, on a
        workload where recognition requires retained information."""
        budget = 100.0
        workload = MovingHotspotWorkload(db_pages=50_000, hot_pages=60,
                                         hot_fraction=0.1,
                                         epoch_length=8_000)
        references = list(workload.references(24_000, seed=5))

        adaptive = AdaptiveCacheSimulator(
            LRUKPolicy(k=2, retained_information_period=1500),
            memory_budget=budget, block_cost=0.02,
            max_history_fraction=0.5, adjust_interval=32)
        baseline = CacheSimulator(LRUPolicy(), capacity=int(budget))
        for index, reference in enumerate(references):
            if index == 8_000:
                adaptive.start_measurement()
                baseline.start_measurement()
            adaptive.access(reference)
            baseline.access(reference)
        assert adaptive.hit_ratio > baseline.hit_ratio
