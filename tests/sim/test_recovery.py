"""Fault-tolerant sweep execution: retries, chaos, checkpoints, resume."""

import json
import os
import signal

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.obs import CallbackSink, CellFailureEvent, EventDispatcher
from repro.obs.registry import MetricsRegistry
from repro.policies import make_policy
from repro.sim import (
    CellExecutionError,
    PolicySpec,
    RetryPolicy,
    SweepCheckpoint,
    SweepInterrupted,
    TraceCache,
    fork_available,
    grid_fingerprint,
    run_experiment,
    run_grid,
    sweep_buffer_sizes,
)
from repro.sim import experiment as experiment_module
from repro.sim import recovery, sweep
from repro.sim.recovery import (
    ChaosError,
    chaos_hook,
    deserialize_result,
    serialize_result,
)
from repro.workloads import ZipfianWorkload

#: Instant retries for tests: full attempts, no backoff sleeping.
FAST_RETRY = RetryPolicy(max_attempts=3, backoff_base=0.0)

SPECS = [PolicySpec.lru(), PolicySpec.lruk(2)]
CAPACITIES = [4, 8]


def _grid(jobs=1, specs=SPECS, capacities=CAPACITIES, seed=1, **kwargs):
    """A small Table 4.2-shaped grid, fast enough for failure injection."""
    workload = ZipfianWorkload(n=60)
    return run_grid(workload, specs, capacities, warmup=100, measured=300,
                    seed=seed, repetitions=2, jobs=jobs,
                    retry=kwargs.pop("retry", FAST_RETRY), **kwargs)


def _observed():
    """A dispatcher with a metrics registry and an event recorder."""
    events = []
    dispatcher = EventDispatcher()
    dispatcher.attach(CallbackSink(lambda event, context:
                                   events.append(event)))
    dispatcher.metrics = MetricsRegistry()
    return dispatcher, events


def _failure_events(events):
    return [e for e in events if isinstance(e, CellFailureEvent)]


class TestRetryPolicy:
    def test_defaults(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 3
        assert policy.fallback_serial
        assert policy.timeout is None

    def test_exponential_delay(self):
        policy = RetryPolicy(backoff_base=0.1, backoff_factor=2.0)
        assert policy.delay(0) == pytest.approx(0.1)
        assert policy.delay(1) == pytest.approx(0.2)
        assert policy.delay(2) == pytest.approx(0.4)

    def test_backoff_uses_injected_sleep(self):
        slept = []
        policy = RetryPolicy(backoff_base=0.5, sleep=slept.append)
        policy.backoff(1)
        assert slept == [pytest.approx(1.0)]

    def test_zero_base_never_sleeps(self):
        policy = RetryPolicy(backoff_base=0.0,
                             sleep=lambda s: pytest.fail("slept"))
        policy.backoff(5)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(backoff_base=-1.0)
        with pytest.raises(ConfigurationError):
            RetryPolicy(timeout=0.0)


class TestClassify:
    def test_broken_pool_is_transient_crash(self):
        from concurrent.futures.process import BrokenProcessPool
        assert recovery.classify(BrokenProcessPool()) == ("crash", True)

    def test_configuration_error_is_poisoned(self):
        assert recovery.classify(ConfigurationError("bad")) == \
            ("poisoned", False)

    def test_other_exceptions_are_transient(self):
        assert recovery.classify(RuntimeError("flaky")) == ("error", True)
        assert recovery.classify(ChaosError("boom")) == ("error", True)


class TestCheckpointRoundTrip:
    def test_result_serialization_round_trips_exactly(self):
        grid = _grid()
        for result in grid.values():
            record = json.loads(json.dumps(serialize_result(result)))
            assert deserialize_result(record) == result

    def test_fingerprint_distinguishes_grids(self):
        workload = ZipfianWorkload(n=60)
        base = grid_fingerprint(workload, SPECS, CAPACITIES, 100, 300, 1, 2)
        assert base == grid_fingerprint(
            ZipfianWorkload(n=60), SPECS, CAPACITIES, 100, 300, 1, 2)
        assert base != grid_fingerprint(
            workload, SPECS, CAPACITIES, 100, 300, 2, 2)  # seed
        assert base != grid_fingerprint(
            workload, SPECS, [4, 16], 100, 300, 1, 2)  # capacities
        assert base != grid_fingerprint(
            workload, SPECS[:1], CAPACITIES, 100, 300, 1, 2)  # labels

    def test_checkpoint_records_and_reloads(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        with SweepCheckpoint(path) as checkpoint:
            grid = _grid(checkpoint=checkpoint)
        assert len(grid) == len(SPECS) * len(CAPACITIES)
        reopened = SweepCheckpoint(path, resume=True)
        fingerprint = grid_fingerprint(
            ZipfianWorkload(n=60), SPECS, CAPACITIES, 100, 300, 1, 2)
        assert reopened.completed(fingerprint) == grid
        assert reopened.completed("feedfacedeadbeef") == {}
        reopened.close()

    def test_truncated_tail_tolerated(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        with SweepCheckpoint(path) as checkpoint:
            _grid(checkpoint=checkpoint)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"grid": "abc", "capacity": 4, "lab')  # crash cut
        reopened = SweepCheckpoint(path, resume=True)
        assert reopened.resumed_cells == len(SPECS) * len(CAPACITIES)
        reopened.close()

    def test_fresh_open_truncates(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        with SweepCheckpoint(path) as checkpoint:
            _grid(checkpoint=checkpoint)
        fresh = SweepCheckpoint(path, resume=False)
        fresh.close()
        assert os.path.getsize(path) == 0


class TestResume:
    def test_resume_skips_completed_cells(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        with SweepCheckpoint(path) as checkpoint:
            first = _grid(checkpoint=checkpoint)
        narrated = []
        with SweepCheckpoint(path, resume=True) as checkpoint:
            resumed = _grid(checkpoint=checkpoint, progress=narrated.append)
        assert resumed == first
        assert narrated == []  # nothing re-ran, nothing re-narrated

    def test_partial_resume_runs_only_missing_cells(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        with SweepCheckpoint(path) as checkpoint:
            full = _grid(checkpoint=checkpoint)
        # Keep only the first two completed cells, as if interrupted.
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:2])
        narrated = []
        with SweepCheckpoint(path, resume=True) as checkpoint:
            resumed = _grid(checkpoint=checkpoint, progress=narrated.append)
        assert resumed == full
        assert len(narrated) == len(full) - 2

    def test_interrupt_salvages_and_resume_completes(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")
        seen = []

        def interrupt_after_two(line):
            seen.append(line)
            if len(seen) == 2:
                raise KeyboardInterrupt

        with SweepCheckpoint(path) as checkpoint:
            with pytest.raises(SweepInterrupted) as info:
                _grid(checkpoint=checkpoint, progress=interrupt_after_two)
        assert len(info.value.results) == 2  # completed cells salvaged
        with SweepCheckpoint(path, resume=True) as checkpoint:
            assert checkpoint.resumed_cells == 2
            resumed = _grid(checkpoint=checkpoint)
        assert resumed == _grid()  # identical to an uninterrupted run


class TestSerialRetry:
    def test_flaky_factory_retries_to_serial_answer(self):
        baseline = _grid()
        built = []

        def flaky(ctx):
            built.append(ctx)
            if len(built) == 1:
                raise RuntimeError("first build fails")
            return make_policy("lru")

        specs = [PolicySpec("LRU-1", flaky), PolicySpec.lruk(2)]
        dispatcher, events = _observed()
        grid = _grid(specs=specs, observability=dispatcher)
        assert grid == baseline
        failures = _failure_events(events)
        assert [e.action for e in failures] == ["retry"]
        assert failures[0].failure == "error"
        assert dispatcher.metrics.counter("sweep.cell.retries").value == 1
        assert dispatcher.metrics.counter("sweep.cell.failures").value == 0

    def test_poisoned_cell_fails_fast_and_keeps_good_cells(self, tmp_path):
        path = str(tmp_path / "cells.jsonl")

        def poisoned(ctx):
            raise ConfigurationError("deterministically broken")

        specs = [PolicySpec.lru(), PolicySpec("BAD", poisoned)]
        dispatcher, events = _observed()
        with SweepCheckpoint(path) as checkpoint:
            with pytest.raises(CellExecutionError) as info:
                _grid(specs=specs, checkpoint=checkpoint,
                      observability=dispatcher)
        failures = info.value.failures
        assert len(failures) == len(CAPACITIES)
        assert all(f.kind == "poisoned" for f in failures)
        assert all(f.attempts == 1 for f in failures)  # never retried
        assert all(f.label == "BAD" for f in failures)
        # Every healthy cell completed and was checkpointed.
        assert set(info.value.results) == {(c, "LRU-1") for c in CAPACITIES}
        reopened = SweepCheckpoint(path, resume=True)
        assert reopened.resumed_cells == len(CAPACITIES)
        reopened.close()
        assert dispatcher.metrics.counter("sweep.cell.failures").value == 2
        assert all(e.action == "failed" for e in _failure_events(events))

    def test_exhausted_attempts_raise_with_history(self):
        def always_broken(ctx):
            raise RuntimeError("never builds")

        specs = [PolicySpec("BROKEN", always_broken)]
        with pytest.raises(CellExecutionError) as info:
            _grid(specs=specs, capacities=[4])
        (failure,) = info.value.failures
        assert failure.attempts == FAST_RETRY.max_attempts
        assert failure.kind == "error"
        assert "never builds" in str(info.value)


class TestChaosHook:
    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(recovery.CHAOS_ENV, raising=False)
        chaos_hook(0, 4, 0)

    def test_raise_mode_selects_by_modulus(self, monkeypatch):
        monkeypatch.setenv(recovery.CHAOS_ENV, "raise:3")
        with pytest.raises(ChaosError):
            chaos_hook(0, 3, 0)  # (0 + 3) % 3 == 0
        chaos_hook(0, 4, 0)  # (0 + 4) % 3 == 1: spared

    def test_retries_are_never_sabotaged(self, monkeypatch):
        monkeypatch.setenv(recovery.CHAOS_ENV, "raise:1")
        chaos_hook(0, 4, attempt=1)

    def test_malformed_spec_injects_nothing(self, monkeypatch):
        monkeypatch.setenv(recovery.CHAOS_ENV, "raise:lots")
        chaos_hook(0, 4, 0)
        monkeypatch.setenv(recovery.CHAOS_ENV, "raise:0")
        chaos_hook(0, 4, 0)


@pytest.mark.skipif(not fork_available(),
                    reason="parallel engine needs the fork start method")
class TestParallelRecovery:
    def test_injected_raises_recover_to_serial_answer(self, monkeypatch):
        baseline = _grid()
        monkeypatch.setenv(recovery.CHAOS_ENV, "raise:1")  # every cell
        dispatcher, events = _observed()
        grid = _grid(jobs=2, observability=dispatcher)
        assert grid == baseline
        retried = dispatcher.metrics.counter("sweep.cell.retries").value
        assert retried == len(SPECS) * len(CAPACITIES)
        assert dispatcher.metrics.counter("sweep.cell.failures").value == 0
        assert all(e.action == "retry" for e in _failure_events(events))

    def test_sigkilled_worker_loses_no_cells(self, monkeypatch, tmp_path):
        baseline = _grid()
        path = str(tmp_path / "cells.jsonl")
        monkeypatch.setenv(recovery.CHAOS_ENV, "kill:2")
        dispatcher, events = _observed()
        with SweepCheckpoint(path) as checkpoint:
            grid = _grid(jobs=2, observability=dispatcher,
                         checkpoint=checkpoint)
        assert grid == baseline  # bit-identical to the serial run
        assert dispatcher.metrics.counter("sweep.pool.rebuilds").value >= 1
        kinds = {e.failure for e in _failure_events(events)}
        assert "crash" in kinds
        # Completed cells survived to the checkpoint despite the kills.
        reopened = SweepCheckpoint(path, resume=True)
        assert reopened.resumed_cells == len(grid)
        reopened.close()

    def test_hung_cell_times_out_and_recovers(self, monkeypatch):
        baseline = _grid(specs=SPECS[:1], capacities=[4, 5])
        monkeypatch.setenv(recovery.CHAOS_ENV, "hang:2")  # B=4 only
        retry = RetryPolicy(max_attempts=3, backoff_base=0.0, timeout=1.0)
        dispatcher, events = _observed()
        grid = _grid(jobs=2, specs=SPECS[:1], capacities=[4, 5],
                     retry=retry, observability=dispatcher)
        assert grid == baseline
        assert dispatcher.metrics.counter("sweep.cell.timeouts").value >= 1
        assert any(e.failure == "timeout" and e.action == "retry"
                   for e in _failure_events(events))

    def test_worker_only_failure_falls_back_to_serial(self):
        baseline = _grid()
        parent = os.getpid()

        def parent_only(ctx):
            if os.getpid() != parent:
                raise RuntimeError("refuses to build in a worker")
            return make_policy("lru")

        specs = [PolicySpec("LRU-1", parent_only), PolicySpec.lruk(2)]
        dispatcher, events = _observed()
        retry = RetryPolicy(max_attempts=2, backoff_base=0.0)
        grid = _grid(jobs=2, specs=specs, retry=retry,
                     observability=dispatcher)
        # The degraded cells re-ran in-process and still match serial.
        assert grid == baseline
        assert dispatcher.metrics.counter("sweep.cell.fallbacks").value == \
            len(CAPACITIES)
        assert dispatcher.metrics.counter("sweep.cell.recovered").value == \
            len(CAPACITIES)
        assert dispatcher.metrics.counter("sweep.cell.failures").value == 0
        assert any(e.action == "fallback" for e in _failure_events(events))

    def test_interrupt_with_hung_cell_salvages_promptly(self, monkeypatch):
        # Regression: the pool used to shut down with wait=True when a
        # KeyboardInterrupt unwound the submission loop, stalling Ctrl-C
        # until a hung cell's sleep expired instead of reaping it.
        monkeypatch.setenv(recovery.CHAOS_ENV, "hang:3")  # LRU-2 @ B=5
        completed = []

        def interrupt_after_three(line):
            completed.append(line)
            if len(completed) == 3:  # only the hung cell is left in flight
                raise KeyboardInterrupt

        def overslept(signum, frame):
            raise AssertionError(
                "interrupt salvage blocked on the hung worker")

        previous = signal.signal(signal.SIGALRM, overslept)
        signal.alarm(90)
        try:
            with pytest.raises(SweepInterrupted) as info:
                _grid(jobs=2, capacities=[4, 5],
                      progress=interrupt_after_three)
        finally:
            signal.alarm(0)
            signal.signal(signal.SIGALRM, previous)
        assert len(info.value.results) == 3  # completed cells salvaged

    def test_no_fallback_surfaces_permanent_failure(self):
        def never_in_worker(ctx):
            raise RuntimeError("always broken")

        specs = [PolicySpec("BROKEN", never_in_worker), PolicySpec.lru()]
        retry = RetryPolicy(max_attempts=2, backoff_base=0.0,
                            fallback_serial=False)
        with pytest.raises(CellExecutionError) as info:
            _grid(jobs=2, specs=specs, retry=retry)
        assert {f.label for f in info.value.failures} == {"BROKEN"}
        # The healthy policy's cells all completed and were salvaged.
        assert set(info.value.results) == {(c, "LRU-1") for c in CAPACITIES}

    @settings(max_examples=3, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_property_recovered_grid_equals_serial(self, seed):
        serial = _grid(seed=seed)
        previous = os.environ.get(recovery.CHAOS_ENV)
        os.environ[recovery.CHAOS_ENV] = "raise:2"
        try:
            recovered = _grid(jobs=2, seed=seed)
        finally:
            if previous is None:
                os.environ.pop(recovery.CHAOS_ENV, None)
            else:
                os.environ[recovery.CHAOS_ENV] = previous
        assert recovered == serial


class TestTransientFactory:
    def test_raises_once_globally_then_recovers(self, tmp_path):
        sentinel = str(tmp_path / "first-build")
        baseline = _grid()

        def flaky_once(ctx):
            if not os.path.exists(sentinel):
                with open(sentinel, "w", encoding="utf-8"):
                    pass
                raise RuntimeError("transient: first build only")
            return make_policy("lru")

        specs = [PolicySpec("LRU-1", flaky_once), PolicySpec.lruk(2)]
        jobs = 2 if fork_available() else 1
        dispatcher, events = _observed()
        grid = _grid(jobs=jobs, specs=specs, observability=dispatcher)
        assert grid == baseline
        assert dispatcher.metrics.counter("sweep.cell.failures").value == 0


class TestJobsDefaultIsSerial:
    def test_run_grid_none_jobs_stays_in_process(self, monkeypatch):
        def forbidden(*args, **kwargs):
            raise AssertionError("jobs=None must not spawn a pool")

        monkeypatch.setattr("repro.sim.parallel._execute_resilient",
                            forbidden)
        grid = _grid(jobs=None)
        assert len(grid) == len(SPECS) * len(CAPACITIES)

    def test_ambient_default_reaches_run_grid(self, monkeypatch):
        from repro.sim import parallel as parallel_module
        calls = []
        original = parallel_module._execute_resilient

        def spy(*args, **kwargs):
            calls.append(True)
            return original(*args, **kwargs)

        monkeypatch.setattr(parallel_module, "_execute_resilient", spy)
        with parallel_module.default_jobs(2):
            _grid(jobs=None)
        assert calls if fork_available() else not calls


class TestCacheLifetime:
    class _TrackingCache(TraceCache):
        instances = []

        def __init__(self):
            super().__init__()
            self.cleared = 0
            type(self).instances.append(self)

        def clear(self):
            self.cleared += 1
            super().clear()

    @pytest.fixture(autouse=True)
    def _reset_instances(self):
        type(self)._TrackingCache.instances = []
        yield

    def test_experiment_clears_its_cache(self, monkeypatch):
        monkeypatch.setattr(experiment_module, "TraceCache",
                            self._TrackingCache)
        from repro.experiments import table_4_2_spec
        spec = table_4_2_spec(scale=0.02, n=100, capacities=[8],
                              repetitions=1, include_equi_effective=False)
        run_experiment(spec, jobs=1)
        (cache,) = self._TrackingCache.instances
        assert cache.cleared >= 1
        assert len(cache) == 0

    def test_experiment_clears_cache_on_failure(self, monkeypatch):
        monkeypatch.setattr(experiment_module, "TraceCache",
                            self._TrackingCache)
        from repro.experiments import table_4_2_spec
        spec = table_4_2_spec(scale=0.02, n=100, capacities=[8],
                              repetitions=1, include_equi_effective=False)
        boom = [PolicySpec("BOOM", lambda ctx: (_ for _ in ()).throw(
            ConfigurationError("poisoned")))]
        spec.policies = list(spec.policies) + boom
        with pytest.raises(CellExecutionError):
            run_experiment(spec, jobs=1, retry=FAST_RETRY)
        (cache,) = self._TrackingCache.instances
        assert cache.cleared >= 1
        assert len(cache) == 0

    def test_sweep_clears_owned_cache(self, monkeypatch):
        monkeypatch.setattr(sweep, "TraceCache", self._TrackingCache)
        sweep_buffer_sizes(ZipfianWorkload(n=60), SPECS, [4],
                           warmup=100, measured=200, seed=0)
        (cache,) = self._TrackingCache.instances
        assert cache.cleared >= 1

    def test_sweep_leaves_borrowed_cache_alone(self):
        cache = self._TrackingCache()
        sweep_buffer_sizes(ZipfianWorkload(n=60), SPECS, [4],
                           warmup=100, measured=200, seed=0,
                           trace_cache=cache)
        assert cache.cleared == 0
        assert len(cache) > 0  # still warm for the caller's next probe


class TestCellFailureEvent:
    def test_to_dict(self):
        event = CellFailureEvent(capacity=8, label="LRU-2", attempt=2,
                                 failure="crash", error="SIGKILL",
                                 action="retry")
        record = event.to_dict()
        assert record["event"] == "cell-failure"
        assert record["failure"] == "crash"
        assert record["action"] == "retry"
        json.dumps(record)  # strictly serializable
