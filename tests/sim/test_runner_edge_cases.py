"""Edge cases of the measurement protocol and experiment machinery."""

import pytest

from repro.errors import ConfigurationError
from repro.sim import ExperimentSpec, PolicySpec, run_experiment
from repro.sim.equi_effective import equi_effective_buffer_size
from repro.workloads import TwoPoolWorkload


class TestEquiEffectiveEdges:
    def test_target_zero_is_smallest_capacity(self):
        assert equi_effective_buffer_size(lambda b: 0.5, 0.0, low=3) == 3

    def test_noisy_monotone_function_still_converges(self):
        # A slightly noisy but monotone-by-trend curve; the bisection
        # must land within the noise band of the true threshold (64).
        def evaluate(b):
            wiggle = 0.004 if b % 2 else -0.004
            return min(1.0, b / 128.0) + wiggle

        found = equi_effective_buffer_size(evaluate, 0.5, low=1, high=4096)
        assert 55 <= found <= 72

    def test_low_above_true_threshold_returns_low(self):
        assert equi_effective_buffer_size(lambda b: 1.0, 0.5, low=10) == 10


class TestExperimentEdges:
    def test_equi_effective_none_when_unreachable(self):
        # Force an unreachably small search cap: the ratio column must
        # contain None rather than crash.
        workload = TwoPoolWorkload(n1=10, n2=100)
        spec = ExperimentSpec(
            name="edge", workload=workload,
            policies=[PolicySpec.lru(), PolicySpec.lruk(2)],
            capacities=[20], warmup=200, measured=800, repetitions=1,
            equi_effective=("LRU-1", "LRU-2"),
            equi_effective_high=21)
        result = run_experiment(spec)
        ratio = result.equi_effective_ratios[20]
        assert ratio is None or ratio <= 21 / 20

    def test_spec_by_label(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        spec = ExperimentSpec(
            name="edge", workload=workload,
            policies=[PolicySpec.lru()], capacities=[5],
            warmup=10, measured=10)
        assert spec.spec_by_label("LRU-1").label == "LRU-1"
        with pytest.raises(ConfigurationError):
            spec.spec_by_label("nope")

    def test_single_capacity_single_policy(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        spec = ExperimentSpec(
            name="tiny", workload=workload,
            policies=[PolicySpec.lru()], capacities=[5],
            warmup=50, measured=100, repetitions=1)
        result = run_experiment(spec)
        table = result.to_table()
        assert len(table.rows) == 1
        assert table.rows[0][0] == 5
