"""Parallel sweep engine, trace cache, and fast-path equivalence tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.errors import ConfigurationError
from repro.obs import CallbackSink, EventDispatcher, ProgressEvent
from repro.sim import (
    CachedTrace,
    CacheSimulator,
    PolicySpec,
    TraceCache,
    fork_available,
    measure_hit_ratio,
    run_experiment,
    run_grid,
    sweep_buffer_sizes,
)
from repro.sim import parallel
from repro.types import AccessKind, Reference
from repro.workloads import BankOLTPWorkload, ZipfianWorkload
from repro.workloads.base import compact_reference_pages


class _CountingWorkload(ZipfianWorkload):
    """Counts how many times a reference string is materialized
    (through either the generator or the bulk page-id path)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.materializations = 0

    def references(self, count, seed=0):
        self.materializations += 1
        return super().references(count, seed=seed)

    def page_ids(self, count, seed=0):
        self.materializations += 1
        return super().page_ids(count, seed=seed)


class TestCompactReferencePages:
    def test_plain_stream_compacts(self):
        refs = [Reference(page=p) for p in (3, 1, 4, 1, 5)]
        pages = compact_reference_pages(refs)
        assert list(pages) == [3, 1, 4, 1, 5]

    def test_write_reference_blocks_compaction(self):
        refs = [Reference(page=1), Reference(page=2, kind=AccessKind.WRITE)]
        assert compact_reference_pages(refs) is None

    def test_process_annotation_blocks_compaction(self):
        refs = [Reference(page=1, process_id=7)]
        assert compact_reference_pages(refs) is None


class TestCachedTrace:
    def test_plain_trace_drops_reference_objects(self):
        workload = ZipfianWorkload(n=50)
        refs = list(workload.references(200, seed=1))
        trace = CachedTrace.from_references(refs)
        assert trace.plain
        assert len(trace) == 200
        assert list(trace.page_ids()) == [ref.page for ref in refs]

    def test_lazy_reference_reconstruction(self):
        trace = CachedTrace.from_references(
            [Reference(page=p) for p in (1, 2, 3)])
        rebuilt = trace.references()
        assert rebuilt == [Reference(page=1), Reference(page=2),
                           Reference(page=3)]
        # The rebuilt list is NOT retained: caching it would pin a full
        # Reference object per page id and flip the trace off its
        # compact fast path for the rest of the sweep.
        assert trace.references() is not rebuilt
        assert trace.plain

    def test_metadata_trace_keeps_references(self):
        workload = BankOLTPWorkload()
        refs = list(workload.references(500, seed=0))
        trace = CachedTrace.from_references(refs)
        assert not trace.plain
        assert trace.references() == refs
        assert list(trace.page_ids()) == [ref.page for ref in refs]


class TestTraceCache:
    def test_materializes_each_seed_once(self):
        workload = _CountingWorkload(n=40)
        cache = TraceCache()
        first = cache.get(workload, 100, seed=0)
        again = cache.get(workload, 100, seed=0)
        other_seed = cache.get(workload, 100, seed=1)
        assert first is again
        assert other_seed is not first
        assert workload.materializations == 2
        assert cache.hits == 1 and cache.misses == 2

    def test_distinct_workloads_do_not_collide(self):
        cache = TraceCache()
        a = cache.get(ZipfianWorkload(n=40), 50, seed=0)
        b = cache.get(ZipfianWorkload(n=80), 50, seed=0)
        assert list(a.page_ids()) != list(b.page_ids())

    def test_sweep_materializes_once_per_seed(self):
        workload = _CountingWorkload(n=60)
        sweep_buffer_sizes(
            workload,
            [PolicySpec.lru(), PolicySpec.lruk(2), PolicySpec.opt()],
            [5, 10, 15], warmup=100, measured=300, seed=0, repetitions=2)
        # 3 policies x 3 capacities x 2 repetitions, but only 2 seeds.
        assert workload.materializations == 2


class TestFastIntegerPath:
    @pytest.mark.parametrize("factory", [
        lambda: LRUKPolicy(k=2),
        lambda: LRUKPolicy(k=2, correlated_reference_period=8),
        lambda: LRUKPolicy(k=1),
    ])
    def test_access_page_matches_access(self, factory):
        workload = ZipfianWorkload(n=300)
        refs = list(workload.references(4000, seed=7))
        slow = CacheSimulator(factory(), 40)
        fast = CacheSimulator(factory(), 40)
        for ref in refs:
            hit_slow = slow.access(ref).hit
            hit_fast = fast.access_page(ref.page)
            assert hit_slow == hit_fast
        assert slow.counter.hits == fast.counter.hits
        assert slow.evictions == fast.evictions
        assert slow.resident_pages == fast.resident_pages

    def test_measure_hit_ratio_accepts_cached_trace(self):
        workload = ZipfianWorkload(n=300)
        refs = list(workload.references(3000, seed=2))
        trace = CachedTrace.from_references(refs)
        via_list = measure_hit_ratio(LRUKPolicy(k=2), refs, 30, warmup=1000)
        via_trace = measure_hit_ratio(LRUKPolicy(k=2), trace, 30, warmup=1000)
        assert via_list.hit_ratio == via_trace.hit_ratio
        assert via_list.warmup_counter.hits == via_trace.warmup_counter.hits
        assert via_list.evictions == via_trace.evictions

    def test_eviction_log_falls_back_to_slow_path(self):
        simulator = CacheSimulator(LRUKPolicy(k=2), 2,
                                   record_evictions=True)
        for page in (1, 2, 3, 4, 1, 2):
            simulator.access_page(page)
        assert simulator.eviction_log  # outcomes were recorded


class TestJobResolution:
    def test_explicit_jobs_win(self):
        assert parallel.resolve_jobs(3) == 3

    def test_default_is_serial(self):
        assert parallel.resolve_jobs(None) == 1

    def test_ambient_default_scopes(self):
        with parallel.default_jobs(4):
            assert parallel.resolve_jobs(None) == 4
        assert parallel.resolve_jobs(None) == 1

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            parallel.resolve_jobs(0)
        with pytest.raises(ConfigurationError):
            with parallel.default_jobs(-1):
                pass


GRID_SPECS = [PolicySpec.lru(), PolicySpec.lruk(2), PolicySpec.a0(),
              PolicySpec.opt()]


def _table_42_grid(seed, jobs, progress=None, observability=None):
    """Table 4.2's grid at reduced scale (N=100, short protocol)."""
    workload = ZipfianWorkload(n=100)
    return sweep_buffer_sizes(
        workload, GRID_SPECS, [8, 16, 32], warmup=500, measured=1500,
        seed=seed, repetitions=2, jobs=jobs, progress=progress,
        observability=observability)


class TestParallelEquivalence:
    @settings(max_examples=4, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_parallel_equals_serial(self, seed):
        serial = _table_42_grid(seed, jobs=1)
        parallel_cells = _table_42_grid(seed, jobs=4)
        assert [cell.capacity for cell in serial] == \
            [cell.capacity for cell in parallel_cells]
        for ours, theirs in zip(serial, parallel_cells):
            for label in (spec.label for spec in GRID_SPECS):
                mine, other = ours.results[label], theirs.results[label]
                assert mine.hit_ratio == other.hit_ratio
                assert mine.interval == other.interval
                assert [run.seed for run in mine.runs] == \
                    [run.seed for run in other.runs]
                assert mine.runs == other.runs

    def test_run_experiment_jobs_matches_serial(self):
        from repro.experiments import table_4_2_spec
        spec = table_4_2_spec(scale=0.02, n=100, capacities=[8, 16],
                              repetitions=1, include_equi_effective=False)
        serial = run_experiment(spec, jobs=1)
        fanned = run_experiment(spec, jobs=2)
        assert serial.cells == fanned.cells

    def test_run_grid_shape(self):
        workload = ZipfianWorkload(n=50)
        specs = [PolicySpec.lru(), PolicySpec.lruk(2)]
        grid = run_grid(workload, specs, [4, 8], warmup=100, measured=300,
                        seed=1, repetitions=1, jobs=2)
        assert set(grid) == {(4, "LRU-1"), (4, "LRU-2"),
                             (8, "LRU-1"), (8, "LRU-2")}


class TestParallelProgress:
    def test_progress_event_per_completed_cell(self):
        events = []
        dispatcher = EventDispatcher()
        dispatcher.attach(CallbackSink(
            lambda event, context: events.append(event)))
        _table_42_grid(0, jobs=2, observability=dispatcher)
        progress = [e for e in events if isinstance(e, ProgressEvent)]
        assert len(progress) == 3 * len(GRID_SPECS)  # one per cell
        # Same format as the serial sweep's narration.
        assert all(e.message.startswith("B=") for e in progress)

    def test_progress_callback_preferred_over_dispatcher(self):
        lines, events = [], []
        dispatcher = EventDispatcher()
        dispatcher.attach(CallbackSink(
            lambda event, context: events.append(event)))
        _table_42_grid(0, jobs=2, progress=lines.append,
                       observability=dispatcher)
        assert len(lines) == 3 * len(GRID_SPECS)
        assert not [e for e in events if isinstance(e, ProgressEvent)]

    def test_serial_progress_format_matches(self):
        serial_lines, parallel_lines = [], []
        _table_42_grid(3, jobs=1, progress=serial_lines.append)
        _table_42_grid(3, jobs=2, progress=parallel_lines.append)
        assert sorted(serial_lines) == sorted(parallel_lines)


@pytest.mark.skipif(not fork_available(),
                    reason="parallel engine needs the fork start method")
class TestParallelMetricsParity:
    def _snapshot(self, jobs):
        from repro.obs.registry import MetricsRegistry
        dispatcher = EventDispatcher()
        dispatcher.attach(CallbackSink(lambda event, context: None))
        dispatcher.metrics = MetricsRegistry()
        _table_42_grid(0, jobs=jobs, observability=dispatcher)
        return dispatcher.metrics.snapshot()

    def test_metrics_out_identical_under_jobs(self):
        serial = self._snapshot(jobs=1)
        fanned = self._snapshot(jobs=4)
        assert set(serial) == set(fanned)
        for key, value in serial.items():
            if key.endswith(".mean"):
                # Welford means merge via Chan's parallel formula — equal
                # up to floating-point association, not bit-for-bit.
                assert fanned[key] == pytest.approx(value)
            else:
                # Counters and histogram counts/quantiles merge exactly.
                assert fanned[key] == value

    def test_worker_histograms_reach_metrics_snapshot(self):
        fanned = self._snapshot(jobs=2)
        cells = 3 * len(GRID_SPECS) * 2  # capacities x policies x reps
        assert fanned["protocol.run_hit_ratio.count"] == cells
        assert 0.0 < fanned["protocol.run_hit_ratio.p50"] < 1.0


@pytest.mark.skipif(not fork_available(),
                    reason="parallel engine needs the fork start method")
class TestForkEngine:
    def test_uses_processes_when_forkable(self):
        # Counting materializations proves workers inherited the parent's
        # pre-warmed cache: a worker that regenerated the trace would
        # bump a *copy* of the counter, and the parent's would still
        # count one materialization per seed.
        workload = _CountingWorkload(n=60)
        sweep_buffer_sizes(
            workload, [PolicySpec.lru(), PolicySpec.lruk(2)], [5, 10],
            warmup=100, measured=300, seed=0, repetitions=2, jobs=2)
        assert workload.materializations == 2


class TestMmapSpillEquivalence:
    """Sweeps whose traces spill to columnar mmap files (see
    :mod:`repro.sim.trace_cache`) must render bit-identical tables —
    the storage of the page ids is invisible to every consumer, serial
    or forked."""

    def spec(self):
        from repro.experiments import table_4_2_spec
        return table_4_2_spec(scale=0.02, n=100, capacities=[8, 16],
                              repetitions=1, include_equi_effective=False)

    def test_spill_knob_engages(self, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
        trace = CachedTrace.materialize(ZipfianWorkload(n=20), 50, 0)
        assert trace.mmap_backed

    def test_spilled_serial_matches_in_memory(self, monkeypatch):
        baseline = run_experiment(self.spec(), jobs=1)
        monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
        spilled = run_experiment(self.spec(), jobs=1)
        assert baseline.cells == spilled.cells

    @pytest.mark.skipif(not fork_available(),
                        reason="parallel engine needs the fork start method")
    def test_spilled_parallel_matches_in_memory_serial(self, monkeypatch):
        baseline = run_experiment(self.spec(), jobs=1)
        monkeypatch.setenv("REPRO_TRACE_SPILL", "1")
        fanned = run_experiment(self.spec(), jobs=2)
        assert baseline.cells == fanned.cells
