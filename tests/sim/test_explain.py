"""`repro explain`: oracle index, deterministic replay, report, CLI."""

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.sim import NextUseIndex, explain_eviction, replay_cell
from repro.sim.explain import EXPLAIN_WORKLOADS, make_workload
from repro.workloads import ZipfianWorkload


class TestNextUseIndex:
    def test_bisects_strictly_forward(self):
        index = NextUseIndex([5, 7, 5, 9, 5])  # times 1..5
        assert index.next_use(5, 0) == 1
        assert index.next_use(5, 1) == 3
        assert index.next_use(5, 3) == 5
        assert index.next_use(5, 5) is None
        assert index.next_use(7, 2) is None
        assert index.next_use(404, 1) is None
        assert index.horizon == 5


class TestReplayCell:
    def test_replay_is_deterministic(self):
        workload = ZipfianWorkload(n=200)
        first, _ = replay_cell(workload, seed=3, capacity=30,
                               references=2000, belady=False)
        second, _ = replay_cell(ZipfianWorkload(n=200), seed=3, capacity=30,
                                references=2000, belady=False)
        assert [d.time for d in first.decisions] == \
            [d.time for d in second.decisions]
        assert [d.victim for d in first.decisions] == \
            [d.victim for d in second.decisions]

    def test_belady_annotation_is_populated(self):
        workload = ZipfianWorkload(n=200)
        recorder, simulator = replay_cell(workload, seed=3, capacity=30,
                                          references=2000)
        assert recorder.evictions == simulator.evictions
        annotated = [d for d in recorder.decisions
                     if d.belady_agrees is not None]
        assert annotated  # the oracle saw every decision
        assert recorder.belady_agreement_ratio is not None
        assert 0.0 <= recorder.belady_agreement_ratio <= 1.0

    def test_rejects_empty_replay(self):
        with pytest.raises(ConfigurationError):
            replay_cell(ZipfianWorkload(n=10), seed=0, capacity=5,
                        references=0)


class TestExplainEviction:
    def test_report_names_the_mechanism(self):
        report = explain_eviction("zipfian", seed=7, capacity=50,
                                  page=1, references=3000)
        text = report.render()
        assert "workload=zipfian seed=7 capacity=50" in text
        if report.found:
            assert "backward K-distance" in text
            assert "top candidates" in text
            assert "Belady (B0)" in text
        assert "evictions recorded:" in text

    def test_locates_an_exact_eviction_time(self):
        probe = explain_eviction("zipfian", seed=7, capacity=50,
                                 references=3000, page=0)
        # Pick a page/time pair we know exists from the probe replay.
        decision = probe.recorder.decisions[-1]
        report = explain_eviction("zipfian", seed=7, capacity=50,
                                  references=3000,
                                  page=decision.victim, at=decision.time)
        assert report.found
        assert report.decision.time == decision.time
        assert report.decision.victim == decision.victim
        assert f"evicted page {decision.victim} at t={decision.time}" \
            in report.render()

    def test_never_evicted_page_is_reported_not_crashed(self):
        report = explain_eviction("zipfian", seed=7, capacity=50,
                                  references=1000, page=987654)
        assert not report.found
        assert "never evicted" in report.render()

    def test_at_extends_the_replay_window(self):
        report = explain_eviction("zipfian", seed=1, capacity=20,
                                  references=500, page=1, at=800,
                                  belady=False)
        assert report.references == 800

    def test_unknown_workload_raises_with_known_names(self):
        with pytest.raises(ConfigurationError, match="zipfian"):
            make_workload("nope")

    def test_every_registered_workload_builds(self):
        for name in EXPLAIN_WORKLOADS:
            make_workload(name)


class TestExplainCli:
    def test_cli_explains_an_eviction(self, capsys):
        probe = explain_eviction("zipfian", seed=7, capacity=100,
                                 references=3000, page=0)
        decision = probe.recorder.decisions[-1]
        code = main(["explain", "--workload", "zipfian", "--seed", "7",
                     "--capacity", "100", "--refs", "3000",
                     "--page", str(decision.victim),
                     "--at", str(decision.time)])
        out = capsys.readouterr().out
        assert code == 0
        assert "backward K-distance" in out
        assert "top candidates" in out
        assert "Belady (B0)" in out

    def test_cli_exit_code_signals_not_found(self, capsys):
        code = main(["explain", "--workload", "zipfian", "--seed", "7",
                     "--capacity", "100", "--refs", "500",
                     "--page", "987654", "--no-belady"])
        assert code == 1
        assert "never evicted" in capsys.readouterr().out
