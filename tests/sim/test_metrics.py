"""Tests for the detailed metrics collector."""

import pytest

from repro.policies import LRUPolicy
from repro.sim import CacheSimulator, MetricsCollector


def collect(trace, capacity):
    simulator = CacheSimulator(LRUPolicy(), capacity)
    collector = MetricsCollector()
    for page in trace:
        collector.record(simulator.access(page))
    return collector


class TestMissBreakdown:
    def test_all_first_touches_are_compulsory(self):
        collector = collect([1, 2, 3, 4], capacity=10)
        assert collector.misses.compulsory == 4
        assert collector.misses.capacity == 0
        assert collector.misses.capacity_fraction() == 0.0

    def test_re_miss_after_eviction_is_capacity(self):
        # 1 evicted by 2,3 then referenced again.
        collector = collect([1, 2, 3, 1], capacity=2)
        assert collector.misses.compulsory == 3
        assert collector.misses.capacity == 1

    def test_hits_counted(self):
        collector = collect([1, 1, 1], capacity=2)
        assert collector.hits == 2
        assert collector.hit_ratio == pytest.approx(2 / 3)

    def test_capacity_fraction_of_cyclic_scan(self):
        # After the first lap, every miss is a capacity miss.
        collector = collect([0, 1, 2, 3] * 10, capacity=3)
        assert collector.misses.compulsory == 4
        assert collector.misses.capacity == 36
        assert collector.misses.capacity_fraction() == pytest.approx(0.9)


class TestResidencyAndAge:
    def test_residency_duration_measured(self):
        # 1 admitted at t=1, evicted at t=4 -> residency 3.
        collector = collect([1, 2, 3, 4], capacity=3)
        assert collector.residency.count == 1
        assert collector.residency.mean == pytest.approx(3.0)

    def test_eviction_age_uses_last_reference(self):
        # 1 admitted t=1, hit t=2, evicted t=5 -> age 3, residency 4.
        collector = collect([1, 1, 2, 3, 4], capacity=3)
        assert collector.eviction_age.mean == pytest.approx(3.0)
        assert collector.residency.mean == pytest.approx(4.0)

    def test_summary_keys(self):
        collector = collect([1, 2, 1, 3], capacity=2)
        summary = collector.summary()
        assert summary["references"] == 4.0
        assert 0.0 <= summary["hit_ratio"] <= 1.0
        assert "mean_residency" in summary
        assert "capacity_miss_fraction" in summary

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.hit_ratio == 0.0
        assert collector.summary()["references"] == 0.0


class TestEdgeCases:
    def test_zero_reference_run_is_all_zeros(self):
        collector = MetricsCollector()
        summary = collector.summary()
        assert all(value == 0.0 for value in summary.values())
        assert collector.misses.capacity_fraction() == 0.0
        assert collector.residency_histogram.total == 0
        assert collector.residency_histogram.fraction_at_most(100) == 0.0

    def test_readmission_cycles_stay_capacity_misses(self):
        # Three pages cycling through a 2-frame cache: after the first
        # lap every miss re-admits a previously evicted page.
        collector = collect([1, 2, 3, 1, 2, 3], capacity=2)
        assert collector.misses.compulsory == 3
        assert collector.misses.capacity == 3
        assert collector.hits == 0
        assert collector.misses.capacity_fraction() == pytest.approx(0.5)

    def test_readmitted_page_restarts_its_residency_clock(self):
        # 1 admitted t=1, evicted t=3, readmitted t=4, evicted t=6:
        # two residency samples of 2 each, not one of 5.
        collector = collect([1, 2, 3, 1, 2, 3], capacity=2)
        assert collector.residency.count == 4
        first_two = collect([1, 2, 3], capacity=2)
        assert first_two.residency.mean == pytest.approx(2.0)

    def test_hit_after_readmission_counts_as_hit(self):
        collector = collect([1, 2, 3, 1, 1], capacity=2)
        assert collector.hits == 1
        assert collector.misses.compulsory == 3
        assert collector.misses.capacity == 1

    def test_residency_histogram_bucket_boundaries(self):
        # capacity=2; page 1 is LRU when 2 arrives at t=5, so its
        # residency is 5-1=4 -> the [4,7] geometric bucket, while the
        # short-lived filler pages land in lower buckets.
        collector = collect([1, 9, 9, 9, 2], capacity=2)
        buckets = {(low, high): count for low, high, count
                   in collector.residency_histogram.buckets()}
        assert buckets[(4, 7)] == 1

    def test_histogram_power_of_two_edges_and_zero_bucket(self):
        # Direct boundary probes: 2**k starts a new bucket; 0 is its own.
        histogram = collect([], capacity=1).residency_histogram
        for interval in (0, 1, 2, 3, 4, 7, 8):
            histogram.add(interval)
        assert histogram.zero_count == 1
        buckets = {(low, high): count for low, high, count
                   in histogram.buckets()}
        assert buckets == {(1, 1): 1, (2, 3): 2, (4, 7): 2, (8, 15): 1}
        assert histogram.total == 7
