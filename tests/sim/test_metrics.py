"""Tests for the detailed metrics collector."""

import pytest

from repro.policies import LRUPolicy
from repro.sim import CacheSimulator, MetricsCollector


def collect(trace, capacity):
    simulator = CacheSimulator(LRUPolicy(), capacity)
    collector = MetricsCollector()
    for page in trace:
        collector.record(simulator.access(page))
    return collector


class TestMissBreakdown:
    def test_all_first_touches_are_compulsory(self):
        collector = collect([1, 2, 3, 4], capacity=10)
        assert collector.misses.compulsory == 4
        assert collector.misses.capacity == 0
        assert collector.misses.capacity_fraction() == 0.0

    def test_re_miss_after_eviction_is_capacity(self):
        # 1 evicted by 2,3 then referenced again.
        collector = collect([1, 2, 3, 1], capacity=2)
        assert collector.misses.compulsory == 3
        assert collector.misses.capacity == 1

    def test_hits_counted(self):
        collector = collect([1, 1, 1], capacity=2)
        assert collector.hits == 2
        assert collector.hit_ratio == pytest.approx(2 / 3)

    def test_capacity_fraction_of_cyclic_scan(self):
        # After the first lap, every miss is a capacity miss.
        collector = collect([0, 1, 2, 3] * 10, capacity=3)
        assert collector.misses.compulsory == 4
        assert collector.misses.capacity == 36
        assert collector.misses.capacity_fraction() == pytest.approx(0.9)


class TestResidencyAndAge:
    def test_residency_duration_measured(self):
        # 1 admitted at t=1, evicted at t=4 -> residency 3.
        collector = collect([1, 2, 3, 4], capacity=3)
        assert collector.residency.count == 1
        assert collector.residency.mean == pytest.approx(3.0)

    def test_eviction_age_uses_last_reference(self):
        # 1 admitted t=1, hit t=2, evicted t=5 -> age 3, residency 4.
        collector = collect([1, 1, 2, 3, 4], capacity=3)
        assert collector.eviction_age.mean == pytest.approx(3.0)
        assert collector.residency.mean == pytest.approx(4.0)

    def test_summary_keys(self):
        collector = collect([1, 2, 1, 3], capacity=2)
        summary = collector.summary()
        assert summary["references"] == 4.0
        assert 0.0 <= summary["hit_ratio"] <= 1.0
        assert "mean_residency" in summary
        assert "capacity_miss_fraction" in summary

    def test_empty_collector(self):
        collector = MetricsCollector()
        assert collector.hit_ratio == 0.0
        assert collector.summary()["references"] == 0.0
