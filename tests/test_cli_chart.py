"""CLI chart flag smoke test (separate file: it runs a real sweep)."""

from repro.cli import main


def test_table_chart_flag(capsys):
    code = main(["table4.1", "--scale", "0.2", "--repetitions", "1",
                 "--quiet", "--chart"])
    assert code == 0
    out = capsys.readouterr().out
    assert "o=LRU-1" in out
    assert "x=LRU-2" in out
    assert "hit ratio" in out
