"""Tests for trace profiling (skew curves and the Five Minute census)."""

import pytest

from repro.analysis import five_minute_census, profile_trace, skew_profile
from repro.errors import ConfigurationError
from repro.types import Reference


class TestSkewProfile:
    def test_uniform_trace(self):
        trace = list(range(10)) * 10
        profile = skew_profile(trace)
        assert profile.touched_pages == 10
        assert profile.total_references == 100
        assert profile.mass_of_top_fraction(0.5) == pytest.approx(0.5)

    def test_skewed_trace(self):
        trace = [0] * 90 + list(range(1, 11))
        profile = skew_profile(trace)
        assert profile.mass_of_top_fraction(1 / 11) == pytest.approx(0.9)

    def test_fraction_for_mass(self):
        trace = [0] * 80 + list(range(1, 21))
        profile = skew_profile(trace)
        assert profile.fraction_for_mass(0.8) == pytest.approx(1 / 21)
        assert profile.fraction_for_mass(1.0) == pytest.approx(1.0)

    def test_accepts_references(self):
        trace = [Reference(page=1), Reference(page=1), Reference(page=2)]
        profile = skew_profile(trace)
        assert profile.touched_pages == 2

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            skew_profile([])

    def test_paper_style_rows(self):
        profile = skew_profile([0] * 50 + list(range(1, 51)))
        rows = dict(profile.paper_style_rows())
        assert rows[1.00] == pytest.approx(1.0)


class TestFiveMinuteCensus:
    def test_fast_page_qualifies(self):
        # Page 0 re-referenced every 2 steps; window 5 -> qualifies.
        trace = [0, 1, 0, 2, 0, 3, 0, 4]
        census = five_minute_census(trace, window_references=5)
        assert census.qualifying_pages == 1
        assert census.touched_pages == 5

    def test_slow_page_does_not_qualify(self):
        trace = [0] + [i for i in range(1, 50)] + [0]
        census = five_minute_census(trace, window_references=10)
        assert census.qualifying_pages == 0
        assert census.re_referenced_pages == 1

    def test_single_reference_pages_never_qualify(self):
        census = five_minute_census(list(range(100)),
                                    window_references=1000)
        assert census.qualifying_pages == 0

    def test_mean_criterion_uses_span_over_gaps(self):
        # Gaps 1 and 9: mean 5 -> qualifies at window 5, not at 4.
        trace = [0, 0] + list(range(1, 9)) + [0]
        assert five_minute_census(trace, 5).qualifying_pages == 1
        assert five_minute_census(trace, 4).qualifying_pages == 0

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            five_minute_census([1], window_references=0)

    def test_qualifying_fraction(self):
        census = five_minute_census([0, 0, 1], window_references=5)
        assert census.qualifying_fraction == pytest.approx(1 / 2)


class TestProfileTrace:
    def test_combined_profile(self):
        trace = [0, 0, 0, 1, 2, 3, 0]
        profile = profile_trace(trace, five_minute_window=10)
        assert profile.references == 7
        assert profile.touched_pages == 4
        assert profile.census.qualifying_pages == 1
        assert len(profile.summary_lines()) >= 3
