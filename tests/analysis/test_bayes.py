"""Tests for the Section 3 Bayesian machinery (Lemmas 3.3-3.6)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    backward_distance_posterior,
    expected_reference_probability,
    is_monotone_in_distance,
)
from repro.analysis.bayes import posterior_summary
from repro.errors import ConfigurationError

TWO_POOL_BETA = [1 / 4, 1 / 4, 1 / 8, 1 / 8, 1 / 8, 1 / 8]


def normalized(values):
    total = sum(values)
    return [v / total for v in values]


class TestPosterior:
    def test_posterior_is_a_distribution(self):
        posterior = backward_distance_posterior(TWO_POOL_BETA, k=5, K=2)
        assert sum(posterior) == pytest.approx(1.0)
        assert all(p >= 0 for p in posterior)

    def test_short_distance_favors_hot_components(self):
        posterior = backward_distance_posterior(TWO_POOL_BETA, k=2, K=2)
        assert posterior[0] > posterior[2]

    def test_long_distance_favors_cold_components(self):
        posterior = backward_distance_posterior(TWO_POOL_BETA, k=200, K=2)
        assert posterior[2] > posterior[0]

    def test_matches_closed_form_eq_3_6(self):
        beta = normalized([0.5, 0.3, 0.2])
        k, K = 7, 2
        weights = [b ** K * (1 - b) ** (k - K + 1) for b in beta]
        expected = [w / sum(weights) for w in weights]
        posterior = backward_distance_posterior(beta, k=k, K=K)
        for ours, ref in zip(posterior, expected):
            assert ours == pytest.approx(ref, rel=1e-9)

    def test_impossible_distance_rejected(self):
        with pytest.raises(ConfigurationError):
            backward_distance_posterior(TWO_POOL_BETA, k=1, K=2)

    def test_unnormalized_beta_rejected(self):
        with pytest.raises(ConfigurationError):
            backward_distance_posterior([0.5, 0.2], k=5, K=2)

    def test_no_underflow_for_huge_distances(self):
        posterior = backward_distance_posterior(TWO_POOL_BETA, k=100_000,
                                                K=2)
        assert sum(posterior) == pytest.approx(1.0)
        assert not any(math.isnan(p) for p in posterior)


class TestExpectedProbability:
    def test_matches_closed_form_eq_3_7(self):
        beta = normalized([0.6, 0.3, 0.1])
        k, K = 9, 2
        numerator = sum(b ** (K + 1) * (1 - b) ** (k - K + 1) for b in beta)
        denominator = sum(b ** K * (1 - b) ** (k - K + 1) for b in beta)
        assert expected_reference_probability(beta, k=k, K=K) == (
            pytest.approx(numerator / denominator, rel=1e-9))

    def test_lemma_36_monotone_decreasing_in_k(self):
        estimates = [expected_reference_probability(TWO_POOL_BETA, k, K=2)
                     for k in range(2, 120)]
        assert all(later < earlier
                   for earlier, later in zip(estimates, estimates[1:]))

    def test_is_monotone_helper(self):
        assert is_monotone_in_distance(TWO_POOL_BETA,
                                       distances=range(2, 60), K=2)

    def test_uniform_beta_gives_constant_estimate(self):
        uniform = [1 / 5] * 5
        first = expected_reference_probability(uniform, k=2, K=2)
        later = expected_reference_probability(uniform, k=50, K=2)
        assert first == pytest.approx(later)
        assert first == pytest.approx(1 / 5)

    def test_estimate_bounded_by_component_range(self):
        beta = normalized([0.7, 0.2, 0.1])
        for k in (2, 5, 20, 100):
            estimate = expected_reference_probability(beta, k=k, K=2)
            assert min(beta) <= estimate <= max(beta)

    @given(k=st.integers(min_value=3, max_value=5000),
           K=st.integers(min_value=1, max_value=3))
    @settings(max_examples=60, deadline=None)
    def test_property_monotonicity_pairwise(self, k, K):
        if k < K:
            k = K
        smaller = expected_reference_probability(TWO_POOL_BETA, k, K)
        larger = expected_reference_probability(TWO_POOL_BETA, k + 1, K)
        assert larger <= smaller + 1e-12

    def test_summary_bundle(self):
        summary = posterior_summary(TWO_POOL_BETA, k=3, K=2)
        assert 0.0 < summary["expected_probability"] < 1.0
        assert summary["mode_mass"] > 0.0


class TestLRUKDecisionRule:
    def test_smaller_backward_distance_means_higher_estimate(self):
        """Lemma 3.6 — the theorem behind Definition 2.2's victim rule."""
        beta = normalized([0.4, 0.3, 0.2, 0.1])
        for K in (1, 2, 3):
            for k_small in range(K, 30):
                e_small = expected_reference_probability(beta, k_small, K)
                e_large = expected_reference_probability(beta, k_small + 5, K)
                assert e_small > e_large
