"""Tests for the self-similar skew fit, including two paper prose claims."""

import math

import pytest

from repro.analysis import fit_self_similar
from repro.analysis.skew_fit import describe_skew
from repro.errors import ConfigurationError
from repro.workloads import TwoPoolWorkload, ZipfianWorkload
from repro.workloads.zipfian import zipf_theta


class TestFitMechanics:
    def test_uniform_trace_fits_theta_one(self):
        trace = list(range(200)) * 20
        fit = fit_self_similar(trace)
        assert fit.theta == pytest.approx(1.0, abs=0.05)
        assert fit.is_uniform

    def test_alpha_beta_roundtrip(self):
        fit = fit_self_similar(list(range(100)) * 5)
        beta = 0.2
        alpha = fit.alpha_for_beta(beta)
        assert math.log(alpha) / math.log(beta) == pytest.approx(
            fit.theta, rel=1e-9)

    def test_prediction_matches_definition(self):
        fit = fit_self_similar(list(range(50)) * 3)
        assert fit.mass_of_top_fraction(0.5) == pytest.approx(
            0.5 ** fit.theta)

    def test_invalid_inputs(self):
        fit = fit_self_similar([1, 1, 2])
        with pytest.raises(ConfigurationError):
            fit.alpha_for_beta(1.0)
        with pytest.raises(ConfigurationError):
            fit.mass_of_top_fraction(0.0)
        with pytest.raises(ConfigurationError):
            fit_self_similar([1, 2], fractions=())
        with pytest.raises(ConfigurationError):
            fit_self_similar([1, 2], fractions=(1.5,))

    def test_describe_skew_is_readable(self):
        text = describe_skew([0] * 80 + list(range(1, 21)))
        assert "of references hit" in text
        assert "theta=" in text


class TestPaperClaims:
    def test_zipfian_workload_recovers_its_theta(self):
        """The Table 4.2 workload must fit its own construction."""
        workload = ZipfianWorkload(n=1000, alpha=0.8, beta=0.2)
        trace = [r.page for r in workload.references(60_000, seed=1)]
        fit = fit_self_similar(trace)
        assert fit.theta == pytest.approx(zipf_theta(0.8, 0.2), rel=0.12)
        assert fit.alpha_for_beta(0.2) == pytest.approx(0.8, abs=0.05)
        assert fit.residual < 0.1

    def test_two_pool_corresponds_to_alpha_half_beta_hundredth(self):
        """Paper §4.2: 'The two pool workload of Section 4.1 roughly
        corresponds to alpha = 0.5 and beta = 0.01'."""
        workload = TwoPoolWorkload(n1=100, n2=10_000)
        trace = [r.page for r in workload.references(120_000, seed=2)]
        from repro.analysis import skew_profile
        profile = skew_profile(trace)
        # Direct check: the hottest 1% of touched pages (~the 100-page
        # hot pool) carries about half of the references.
        assert profile.mass_of_top_fraction(0.01) == pytest.approx(
            0.5, abs=0.05)
        # And the fitted law expressed at beta=0.01 agrees loosely (the
        # two-pool distribution is a step function, not truly
        # self-similar — hence the paper's "roughly").
        fit = fit_self_similar(profile)
        assert 0.35 <= fit.alpha_for_beta(0.01) <= 0.75
