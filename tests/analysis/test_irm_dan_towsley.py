"""Tests for IRM machinery and the analytic LRU/FIFO approximations."""

from collections import Counter

import pytest

from repro.analysis import (
    a0_hit_ratio,
    expected_cost,
    fifo_hit_ratio_approximation,
    geometric_interarrival_pmf,
    interarrival_mean,
    lru_hit_ratio_approximation,
    sample_irm_string,
)
from repro.analysis.irm import a0_resident_set, normalized, uniform_probabilities
from repro.errors import ConfigurationError
from repro.policies import FIFOPolicy, LRUPolicy
from repro.sim import CacheSimulator
from repro.workloads import ZipfianWorkload


class TestGeometricInterarrival:
    def test_pmf_sums_to_one(self):
        beta = 0.2
        total = sum(geometric_interarrival_pmf(beta, k)
                    for k in range(1, 500))
        assert total == pytest.approx(1.0, abs=1e-6)

    def test_mean_is_reciprocal(self):
        beta = 0.25
        mean = sum(k * geometric_interarrival_pmf(beta, k)
                   for k in range(1, 2000))
        assert mean == pytest.approx(interarrival_mean(beta), rel=1e-3)

    def test_eq_31_values(self):
        assert geometric_interarrival_pmf(0.5, 1) == 0.5
        assert geometric_interarrival_pmf(0.5, 3) == 0.125

    def test_invalid_arguments(self):
        with pytest.raises(ConfigurationError):
            geometric_interarrival_pmf(0.0, 1)
        with pytest.raises(ConfigurationError):
            geometric_interarrival_pmf(0.5, 0)


class TestExpectedCost:
    def test_definition_37(self):
        probabilities = {1: 0.5, 2: 0.3, 3: 0.2}
        assert expected_cost(probabilities, resident=[1, 2]) == (
            pytest.approx(0.2))

    def test_full_buffer_zero_cost(self):
        probabilities = {1: 0.6, 2: 0.4}
        assert expected_cost(probabilities, resident=[1, 2]) == (
            pytest.approx(0.0))

    def test_unknown_resident_rejected(self):
        with pytest.raises(ConfigurationError):
            expected_cost({1: 1.0}, resident=[2])

    def test_a0_resident_set_minimizes_cost(self):
        probabilities = normalized({p: 1.0 / (p + 1) for p in range(10)})
        best = a0_resident_set(probabilities, capacity=3)
        best_cost = expected_cost(probabilities, best)
        worst = sorted(probabilities)[-3:]
        assert best_cost <= expected_cost(probabilities, worst)

    def test_a0_hit_ratio_closed_form(self):
        probabilities = {1: 0.5, 2: 0.3, 3: 0.2}
        assert a0_hit_ratio(probabilities, capacity=2) == pytest.approx(0.8)


class TestSampleIrm:
    def test_empirical_frequencies_match(self):
        probabilities = {1: 0.7, 2: 0.2, 3: 0.1}
        counts = Counter(r.page for r in
                         sample_irm_string(probabilities, 30_000, seed=1))
        assert counts[1] / 30_000 == pytest.approx(0.7, abs=0.02)

    def test_uniform_helper(self):
        probabilities = uniform_probabilities(4)
        assert sum(probabilities.values()) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            uniform_probabilities(0)


class TestDanTowsleyApproximations:
    @pytest.fixture(scope="class")
    def zipf(self):
        workload = ZipfianWorkload(n=500)
        return workload, workload.reference_probabilities()

    def _simulate(self, policy, workload, capacity):
        simulator = CacheSimulator(policy, capacity)
        refs = workload.references(30_000, seed=3)
        for index, ref in enumerate(refs):
            if index == 5_000:
                simulator.start_measurement()
            simulator.access(ref)
        return simulator.hit_ratio

    def test_lru_approximation_close_to_simulation(self, zipf):
        workload, probabilities = zipf
        for capacity in (25, 100, 250):
            analytic = lru_hit_ratio_approximation(probabilities, capacity)
            simulated = self._simulate(LRUPolicy(), workload, capacity)
            assert analytic == pytest.approx(simulated, abs=0.04)

    def test_fifo_approximation_close_to_simulation(self, zipf):
        workload, probabilities = zipf
        for capacity in (25, 100):
            analytic = fifo_hit_ratio_approximation(probabilities, capacity)
            simulated = self._simulate(FIFOPolicy(), workload, capacity)
            assert analytic == pytest.approx(simulated, abs=0.04)

    def test_lru_dominates_fifo_analytically(self, zipf):
        _, probabilities = zipf
        for capacity in (10, 50, 200):
            assert (lru_hit_ratio_approximation(probabilities, capacity)
                    >= fifo_hit_ratio_approximation(probabilities, capacity))

    def test_oversized_cache_hits_everything(self, zipf):
        _, probabilities = zipf
        assert lru_hit_ratio_approximation(probabilities, 10_000) == 1.0
        assert fifo_hit_ratio_approximation(probabilities, 10_000) == 1.0

    def test_a0_dominates_lru_analytically(self, zipf):
        _, probabilities = zipf
        for capacity in (10, 50, 200):
            assert (a0_hit_ratio(probabilities, capacity)
                    >= lru_hit_ratio_approximation(probabilities, capacity)
                    - 1e-9)

    def test_invalid_inputs(self, zipf):
        _, probabilities = zipf
        with pytest.raises(ConfigurationError):
            lru_hit_ratio_approximation(probabilities, 0)
        with pytest.raises(ConfigurationError):
            fifo_hit_ratio_approximation({}, 10)
