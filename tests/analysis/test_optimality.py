"""Tests for the Theorem 3.8 empirical verifier."""

import pytest

from repro.analysis import check_theorem_3_8
from repro.analysis.irm import sample_irm_string
from repro.core import LRUKPolicy
from repro.errors import ConfigurationError
from repro.sim import CacheSimulator


def run_and_check(probabilities, capacity, count, k=2, seed=0,
                  check_every=50):
    """Drive an IRM string and check the theorem at intervals."""
    policy = LRUKPolicy(k=k)
    simulator = CacheSimulator(policy, capacity)
    reports = []
    last_admitted = None
    for index, reference in enumerate(
            sample_irm_string(probabilities, count, seed=seed)):
        outcome = simulator.access(reference)
        if not outcome.hit:
            last_admitted = reference.page
        if index and index % check_every == 0:
            reports.append(check_theorem_3_8(
                policy, probabilities, simulator.now, last_admitted))
    return reports


TWO_TIER = {page: (0.15 if page < 4 else 0.4 / 16) for page in range(20)}


class TestStructuralClaim:
    def test_holds_along_an_irm_run(self):
        reports = run_and_check(TWO_TIER, capacity=6, count=2000)
        assert reports
        assert all(report.holds for report in reports), [
            (r.time, r.missing, r.surplus)
            for r in reports if not r.holds][:3]

    def test_holds_for_k3(self):
        reports = run_and_check(TWO_TIER, capacity=5, count=1500, k=3)
        assert all(report.holds for report in reports)

    def test_rejects_nonzero_crp(self):
        policy = LRUKPolicy(k=2, correlated_reference_period=5)
        simulator = CacheSimulator(policy, 4)
        simulator.access(1)
        with pytest.raises(ConfigurationError):
            check_theorem_3_8(policy, {1: 1.0}, simulator.now)


class TestCostClaim:
    def test_cost_gap_is_tiny(self):
        """LRU-K acts optimally 'in all but (perhaps) one of its m buffer
        slots, an insignificant cost increment for large m'."""
        reports = run_and_check(TWO_TIER, capacity=8, count=2500, seed=3)
        worst_gap = max(report.cost_gap for report in reports)
        # One slot's worth of estimate is the theorem's allowance.
        assert worst_gap <= max(TWO_TIER.values()) + 1e-9

    def test_costs_are_probabilities(self):
        reports = run_and_check(TWO_TIER, capacity=6, count=1000, seed=4)
        for report in reports:
            assert 0.0 <= report.optimal_cost <= report.lruk_cost <= 1.0

    def test_larger_buffer_lowers_cost(self):
        small = run_and_check(TWO_TIER, capacity=4, count=1500, seed=5)
        large = run_and_check(TWO_TIER, capacity=10, count=1500, seed=5)
        assert large[-1].lruk_cost < small[-1].lruk_cost
