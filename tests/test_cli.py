"""Tests for the command-line interface."""

import re

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_flags(self):
        args = build_parser().parse_args(
            ["table4.1", "--scale", "0.5", "--repetitions", "2",
             "--quiet", "--compare"])
        assert args.command == "table4.1"
        assert args.scale == 0.5
        assert args.repetitions == 2
        assert args.quiet and args.compare


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4.1" in out
        assert "k-sweep" in out

    def test_unknown_ablation_fails_gracefully(self, capsys):
        assert main(["ablation", "nope"]) == 2
        assert "unknown ablation" in capsys.readouterr().err

    def test_table_41_quick_run(self, capsys):
        code = main(["table4.1", "--scale", "0.2", "--repetitions", "1",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4.1" in out
        assert "LRU-2" in out

    def test_table_41_compare_mode(self, capsys):
        code = main(["table4.1", "--scale", "0.2", "--repetitions", "1",
                     "--quiet", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_trace_stats(self, capsys):
        assert main(["trace-stats", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Five Minute" in out

    def test_list_mentions_telemetry_commands(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "top" in out and "perf" in out

    def test_table_with_serve_metrics_and_sampler(self, capsys):
        code = main(["table4.1", "--scale", "0.05", "--repetitions", "1",
                     "--quiet", "--serve-metrics", "0",
                     "--sample-resources", "0.1"])
        assert code == 0
        captured = capsys.readouterr()
        assert "Table 4.1" in captured.out
        assert "serving /metrics on http://127.0.0.1:" in captured.err

    def test_top_requires_a_source(self, capsys):
        with pytest.raises(SystemExit):
            main(["top"])
        assert "required" in capsys.readouterr().err

    def test_top_rejects_two_sources(self, capsys):
        with pytest.raises(SystemExit):
            main(["top", "--url", "http://x", "--file", "y"])
        err = capsys.readouterr().err
        assert "not allowed" in err

    def test_top_once_reads_a_snapshot_file(self, tmp_path, capsys):
        code = main(["table4.1", "--scale", "0.05", "--repetitions", "1",
                     "--quiet", "--metrics-out",
                     str(tmp_path / "m.jsonl")])
        assert code == 0
        capsys.readouterr()
        assert main(["top", "--file", str(tmp_path / "m.jsonl"),
                     "--once"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "hit ratio" in out

    def test_top_port_shorthand_unreachable_exits_one(self, capsys):
        assert main(["top", "--port", "9", "--once"]) == 1
        assert "cannot read" in capsys.readouterr().out

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "scaling"]) == 0
        out = capsys.readouterr().out
        assert "scale-invariance" in out


class TestCheckpointFlags:
    def test_parser_accepts_checkpoint_and_resume(self):
        args = build_parser().parse_args(
            ["table4.1", "--checkpoint", "cells.jsonl", "--resume"])
        assert args.checkpoint == "cells.jsonl"
        assert args.resume

    def test_ablation_accepts_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["ablation", "scaling", "--checkpoint", "cells.jsonl"])
        assert args.checkpoint == "cells.jsonl"
        assert not args.resume

    def test_resume_requires_checkpoint(self, capsys):
        with pytest.raises(SystemExit) as info:
            main(["table4.1", "--resume"])
        assert info.value.code == 2
        assert "--resume requires --checkpoint" in capsys.readouterr().err

    def test_checkpoint_then_resume_renders_identical_table(
            self, tmp_path, capsys):
        path = str(tmp_path / "cells.jsonl")
        base = ["table4.1", "--scale", "0.2", "--repetitions", "1",
                "--quiet", "--checkpoint", path]
        assert main(base) == 0
        first = capsys.readouterr().out
        assert main(base + ["--resume"]) == 0
        resumed = capsys.readouterr().out
        assert resumed == first
        # The ledger holds every cell exactly once after the resume.
        with open(path, encoding="utf-8") as handle:
            lines = [line for line in handle if line.strip()]
        assert len(lines) > 0

    def test_resume_completes_a_partial_checkpoint(self, tmp_path, capsys):
        path = str(tmp_path / "cells.jsonl")
        base = ["table4.1", "--scale", "0.2", "--repetitions", "1",
                "--quiet", "--checkpoint", path]
        assert main(base) == 0
        full = capsys.readouterr().out
        with open(path, encoding="utf-8") as handle:
            lines = handle.readlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.writelines(lines[: len(lines) // 2])  # "interrupted"
        assert main(base + ["--resume"]) == 0
        assert capsys.readouterr().out == full


class TestTraceCommands:
    def test_bake_then_info_round_trip(self, tmp_path, capsys):
        path = tmp_path / "zipf.rtrc"
        assert main(["trace", "bake", str(path), "--workload", "zipfian",
                     "--refs", "5000", "--seed", "9"]) == 0
        baked = capsys.readouterr().out
        assert "5000" in baked and str(path) in baked
        assert main(["trace", "info", str(path)]) == 0
        info = capsys.readouterr().out
        assert re.search(r"references:\s+5000", info)
        assert re.search(r"seed:\s+9", info)
        assert "ZipfianWorkload" in info

    def test_bake_rejects_nonpositive_refs(self, capsys):
        assert main(["trace", "bake", "/tmp/never-written.rtrc",
                     "--refs", "0"]) == 2
        assert "positive" in capsys.readouterr().err

    def test_info_rejects_a_corrupt_file(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.rtrc"
        bogus.write_bytes(b"this is not a columnar trace, just bytes\n")
        assert main(["trace", "info", str(bogus)]) == 1
        assert "bad magic" in capsys.readouterr().err
