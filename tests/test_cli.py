"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_table_flags(self):
        args = build_parser().parse_args(
            ["table4.1", "--scale", "0.5", "--repetitions", "2",
             "--quiet", "--compare"])
        assert args.command == "table4.1"
        assert args.scale == 0.5
        assert args.repetitions == 2
        assert args.quiet and args.compare


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table4.1" in out
        assert "k-sweep" in out

    def test_unknown_ablation_fails_gracefully(self, capsys):
        assert main(["ablation", "nope"]) == 2
        assert "unknown ablation" in capsys.readouterr().err

    def test_table_41_quick_run(self, capsys):
        code = main(["table4.1", "--scale", "0.2", "--repetitions", "1",
                     "--quiet"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Table 4.1" in out
        assert "LRU-2" in out

    def test_table_41_compare_mode(self, capsys):
        code = main(["table4.1", "--scale", "0.2", "--repetitions", "1",
                     "--quiet", "--compare"])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper" in out

    def test_trace_stats(self, capsys):
        assert main(["trace-stats", "--scale", "0.05"]) == 0
        out = capsys.readouterr().out
        assert "Five Minute" in out

    def test_ablation_runs(self, capsys):
        assert main(["ablation", "scaling"]) == 0
        out = capsys.readouterr().out
        assert "scale-invariance" in out
