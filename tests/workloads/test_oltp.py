"""Calibration tests for the synthetic OLTP bank trace.

DESIGN.md §3 promises that the synthetic trace reproduces the statistics
the paper reports for its production trace; these tests are that promise,
asserted quantitatively (on a 1/4-length trace for speed — the profile is
length-stable, and the full-length numbers go into EXPERIMENTS.md).
"""

from collections import Counter

import pytest

from repro.analysis import five_minute_census, profile_trace, skew_profile
from repro.errors import ConfigurationError
from repro.workloads import BankOLTPWorkload
from repro.workloads.oltp import (
    FIVE_MINUTE_WINDOW_REFERENCES,
    PAPER_TRACE_LENGTH,
)

TRACE_LENGTH = PAPER_TRACE_LENGTH // 4
WINDOW = FIVE_MINUTE_WINDOW_REFERENCES // 4


@pytest.fixture(scope="module")
def trace():
    return list(BankOLTPWorkload().references(TRACE_LENGTH, seed=0))


class TestCalibration:
    def test_head_skew_matches_paper(self, trace):
        """'40% of the references access only 3% of the pages.'"""
        profile = skew_profile(trace)
        assert profile.mass_of_top_fraction(0.03) == pytest.approx(
            0.40, abs=0.05)

    def test_tail_flattening_matches_paper(self, trace):
        """'90% of the references access 65% of the pages.'"""
        profile = skew_profile(trace)
        assert profile.mass_of_top_fraction(0.65) == pytest.approx(
            0.90, abs=0.04)

    def test_five_minute_census_matches_paper(self, trace):
        """'only about 1400 pages satisfy the criterion of the Five
        Minute Rule' — scaled window, same page count expectation."""
        census = five_minute_census(trace, WINDOW)
        assert census.qualifying_pages == pytest.approx(1400, rel=0.35)

    def test_touched_pages_scale(self, trace):
        profile = skew_profile(trace)
        # The designed touched-page total is ~46,700 at full length; at
        # quarter length the cold/warm tails are partially visited.
        assert 20_000 < profile.touched_pages < 50_000

    def test_profile_summary_mentions_key_stats(self, trace):
        profile = profile_trace(trace, WINDOW)
        text = "\n".join(profile.summary_lines())
        assert "references" in text
        assert "Five Minute" in text


class TestMechanics:
    def test_deterministic_per_seed(self):
        workload = BankOLTPWorkload()
        first = [r.page for r in workload.references(2000, seed=5)]
        second = [r.page for r in workload.references(2000, seed=5)]
        assert first == second

    def test_region_classification(self):
        workload = BankOLTPWorkload()
        assert workload.region_of(0) == "root"
        assert workload.region_of(workload.hot.first_page) == "hot"
        assert workload.region_of(workload.warm.first_page) == "warm"
        assert workload.region_of(workload.cold.first_page) == "cold"
        with pytest.raises(ConfigurationError):
            workload.region_of(10 ** 9)

    def test_mass_shares_empirical(self):
        workload = BankOLTPWorkload()
        refs = list(workload.references(100_000, seed=2))
        by_region = Counter(workload.region_of(r.page) for r in refs)
        expected = workload.expected_mass()
        for region, mass in expected.items():
            assert by_region[region] / len(refs) == pytest.approx(
                mass, abs=0.03), region

    def test_chain_walks_are_sequential_in_warm_region(self):
        workload = BankOLTPWorkload()
        refs = [r.page for r in workload.references(5000, seed=3)]
        warm_lo = workload.warm.first_page
        warm_hi = warm_lo + workload.warm.pages
        runs = 0
        for a, b in zip(refs, refs[1:]):
            if warm_lo <= a < warm_hi and b == a + 1:
                runs += 1
        assert runs > 50  # navigational chains exist

    def test_writes_present(self):
        workload = BankOLTPWorkload(write_fraction=0.25)
        refs = list(workload.references(5000, seed=4))
        writes = sum(1 for r in refs if r.is_write)
        assert 0.1 < writes / len(refs) < 0.4

    def test_scanner_processes_annotated(self):
        workload = BankOLTPWorkload()
        refs = list(workload.references(20_000, seed=6))
        scanners = {r.process_id for r in refs if r.process_id
                    and r.process_id >= 100}
        assert len(scanners) == workload.scan_processes

    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            BankOLTPWorkload(root_mass=0.5, hot_mass=0.5, warm_mass=0.2)
        with pytest.raises(ConfigurationError):
            BankOLTPWorkload(hot_pages=0)
        with pytest.raises(ConfigurationError):
            BankOLTPWorkload(write_fraction=1.5)

    def test_five_minute_pages_property(self):
        workload = BankOLTPWorkload()
        assert workload.five_minute_pages == (workload.root.pages
                                              + workload.hot.pages)
