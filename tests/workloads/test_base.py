"""Tests for the workload base classes."""

import pytest

from repro.analysis.irm import normalized
from repro.errors import OracleError
from repro.types import PageId
from repro.workloads.base import SyntheticWorkload, Workload, materialize


class _Plain(Workload):
    def references(self, count, seed=0):
        from repro.types import Reference
        for index in range(count):
            yield Reference(page=index % 3)


class _Irm(SyntheticWorkload):
    def __init__(self, probabilities):
        self._probabilities = probabilities

    def reference_probabilities(self):
        return dict(self._probabilities)


class TestWorkloadDefaults:
    def test_pages_not_implemented_by_default(self):
        with pytest.raises(NotImplementedError):
            _Plain().pages()

    def test_probabilities_raise_oracle_error_by_default(self):
        with pytest.raises(OracleError):
            _Plain().reference_probabilities()

    def test_materialize(self):
        refs = materialize(_Plain(), 5)
        assert [r.page for r in refs] == [0, 1, 2, 0, 1]


class TestSyntheticWorkload:
    def test_sampling_matches_probabilities(self):
        workload = _Irm({1: 0.7, 2: 0.2, 3: 0.1})
        pages = [r.page for r in workload.references(20_000, seed=1)]
        share = pages.count(1) / len(pages)
        assert share == pytest.approx(0.7, abs=0.02)

    def test_unnormalized_probabilities_are_renormalized(self):
        workload = _Irm({1: 7.0, 2: 2.0, 3: 1.0})
        pages = [r.page for r in workload.references(10_000, seed=2)]
        assert pages.count(1) / len(pages) == pytest.approx(0.7, abs=0.03)

    def test_pages_enumerates_support(self):
        workload = _Irm({5: 0.5, 9: 0.5})
        assert list(workload.pages()) == [5, 9]

    def test_deterministic_per_seed(self):
        workload = _Irm({1: 0.5, 2: 0.5})
        first = [r.page for r in workload.references(50, seed=3)]
        second = [r.page for r in workload.references(50, seed=3)]
        assert first == second
