"""Vectorized workload generation is RNG-identical to the scalar loops.

:mod:`repro.workloads.vectorized` rebuilds ``random.Random``'s exact
word stream (MT19937) in numpy blocks, so the vectorized generators
must produce *bit-identical* page sequences to draining
``references()`` — not statistically similar ones. That identity is
what lets :meth:`Workload.page_ids` switch paths by trace length
without changing a single reported number. Every generator must also
decline cleanly (return None) when numpy is missing or the request is
too small, leaving the scalar loop in charge.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.base import compact_reference_pages
from repro.workloads.hotspot import MovingHotspotWorkload
from repro.workloads.vectorized import (
    MIN_VECTOR_COUNT,
    MTStream,
    hotspot_page_ids,
    numpy_or_none,
    zipfian_page_ids,
)
from repro.workloads.zipfian import ZipfianWorkload

needs_numpy = pytest.mark.skipif(numpy_or_none() is None,
                                 reason="numpy unavailable")

SEEDS = st.one_of(
    st.integers(min_value=0, max_value=2**16),
    st.integers(min_value=-2**64, max_value=2**64),
    st.just(0),
)


def scalar_pages(workload, count, seed):
    """Ground truth: the page stream from the per-reference generator."""
    return list(compact_reference_pages(
        workload.references(count, seed=seed)))


@needs_numpy
class TestMTStream:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS, count=st.integers(min_value=1, max_value=2000))
    def test_words_match_getrandbits(self, seed, count):
        rng = random.Random(seed)
        expected = [rng.getrandbits(32) for _ in range(count)]
        assert MTStream(seed).words(count).tolist() == expected

    def test_extension_is_prefix_stable(self):
        stream = MTStream(99)
        head = stream.words(100).tolist()
        full = stream.words(5000)
        assert full[:100].tolist() == head
        rng = random.Random(99)
        assert full.tolist() == [rng.getrandbits(32) for _ in range(5000)]

    def test_crossing_the_twist_boundary(self):
        # 624 words per twist generation: read exactly around it.
        rng = random.Random(7)
        expected = [rng.getrandbits(32) for _ in range(1249)]
        stream = MTStream(7)
        assert stream.words(623).tolist() == expected[:623]
        assert stream.words(625).tolist() == expected[:625]
        assert stream.words(1249).tolist() == expected


@needs_numpy
class TestZipfianIdentity:
    @settings(max_examples=25, deadline=None)
    @given(seed=SEEDS,
           count=st.integers(min_value=1, max_value=800),
           n=st.integers(min_value=1, max_value=5000),
           skew=st.sampled_from([(0.8, 0.2), (0.9, 0.1), (0.5, 0.5)]))
    def test_matches_the_scalar_loop(self, seed, count, n, skew):
        alpha, beta = skew
        workload = ZipfianWorkload(n=n, alpha=alpha, beta=beta)
        pages = zipfian_page_ids(workload, count, seed, min_count=1)
        assert pages is not None
        assert list(pages) == scalar_pages(workload, count, seed)

    def test_workload_page_ids_agrees_across_the_threshold(self):
        """The dispatching entry point must be seamless at the length
        where it switches from the scalar loop to the vector path."""
        workload = ZipfianWorkload(n=300)
        for count in (MIN_VECTOR_COUNT - 1, MIN_VECTOR_COUNT,
                      MIN_VECTOR_COUNT + 1):
            assert list(workload.page_ids(count, seed=4)) == \
                scalar_pages(workload, count, 4), count


@needs_numpy
class TestHotspotIdentity:
    CONFIGS = [
        MovingHotspotWorkload(db_pages=500, hot_pages=20,
                              epoch_length=97),
        MovingHotspotWorkload(db_pages=500, hot_pages=20,
                              epoch_length=97, drift_pages=3),
        MovingHotspotWorkload(db_pages=64, hot_pages=32,
                              hot_fraction=0.5, epoch_length=1000),
        MovingHotspotWorkload(db_pages=2000, hot_pages=7,
                              hot_fraction=0.95, epoch_length=50),
    ]

    @pytest.mark.parametrize("workload", CONFIGS,
                             ids=["jump", "drift", "even", "skewed"])
    @pytest.mark.parametrize("seed", [0, 11])
    def test_matches_the_scalar_loop(self, workload, seed):
        # The rejection-sampled word chain is the hard part: 700
        # references cross several epochs and plenty of rejections.
        pages = hotspot_page_ids(workload, 700, seed, min_count=1)
        assert pages is not None
        assert list(pages) == scalar_pages(workload, 700, seed)

    @settings(max_examples=15, deadline=None)
    @given(seed=SEEDS, count=st.integers(min_value=1, max_value=400))
    def test_matches_under_hypothesis(self, seed, count):
        workload = MovingHotspotWorkload(db_pages=300, hot_pages=30,
                                         epoch_length=83, drift_pages=5)
        pages = hotspot_page_ids(workload, count, seed, min_count=1)
        assert pages is not None
        assert list(pages) == scalar_pages(workload, count, seed)

    def test_declines_by_default(self):
        """Opt-in only: without a forced min_count the generator returns
        None (HOTSPOT_MIN_VECTOR_COUNT is None — the scalar fill loop
        measured faster end to end; see the module docstring)."""
        workload = MovingHotspotWorkload(db_pages=500, hot_pages=20)
        assert hotspot_page_ids(workload, 100_000, 1) is None


class TestDeclines:
    def test_small_requests_decline(self):
        if numpy_or_none() is None:
            pytest.skip("numpy unavailable")
        workload = ZipfianWorkload(n=100)
        assert zipfian_page_ids(workload, MIN_VECTOR_COUNT - 1, 1) is None
        assert zipfian_page_ids(workload, MIN_VECTOR_COUNT, 1) is not None

    def test_env_gate_declines_everything(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        assert numpy_or_none() is None
        workload = ZipfianWorkload(n=100)
        assert zipfian_page_ids(workload, 10_000, 1, min_count=1) is None
        hotspot = MovingHotspotWorkload(db_pages=500, hot_pages=20)
        assert hotspot_page_ids(hotspot, 10_000, 1, min_count=1) is None

    def test_page_ids_still_works_under_the_gate(self, monkeypatch):
        """The dispatching entry point falls back to the scalar fill
        loop — same stream, no numpy anywhere."""
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        workload = ZipfianWorkload(n=200)
        count = MIN_VECTOR_COUNT + 100
        assert list(workload.page_ids(count, seed=2)) == \
            scalar_pages(workload, count, 2)

    def test_mtstream_requires_numpy(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_NUMPY", "1")
        with pytest.raises(RuntimeError):
            MTStream(1)
