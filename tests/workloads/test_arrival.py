"""Tests for timestamped arrival processes and the latency driver."""

import pytest

from repro.errors import ConfigurationError
from repro.policies import LRUPolicy
from repro.sim import CacheSimulator
from repro.workloads import SequentialScanWorkload, TwoPoolWorkload
from repro.workloads.arrival import (
    PoissonArrivals,
    UniformArrivals,
    drive_with_latency,
)


class TestUniformArrivals:
    def test_constant_gaps(self):
        arrivals = UniformArrivals(SequentialScanWorkload(n=10),
                                   references_per_ms=0.5)
        timed = list(arrivals.timed_references(4))
        times = [t for t, _ in timed]
        assert times == [0.0, 2.0, 4.0, 6.0]

    def test_rejects_bad_rate(self):
        with pytest.raises(ConfigurationError):
            UniformArrivals(SequentialScanWorkload(n=2),
                            references_per_ms=0.0)

    def test_preserves_references(self):
        workload = SequentialScanWorkload(n=5)
        arrivals = UniformArrivals(workload)
        pages = [ref.page for _, ref in arrivals.timed_references(5)]
        assert pages == [0, 1, 2, 3, 4]


class TestPoissonArrivals:
    def test_times_strictly_increase(self):
        arrivals = PoissonArrivals(SequentialScanWorkload(n=100),
                                   references_per_ms=1.0)
        times = [t for t, _ in arrivals.timed_references(100, seed=1)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_mean_rate_approximately_honored(self):
        arrivals = PoissonArrivals(SequentialScanWorkload(n=10_000),
                                   references_per_ms=0.5)
        times = [t for t, _ in arrivals.timed_references(10_000, seed=2)]
        mean_gap = times[-1] / len(times)
        assert mean_gap == pytest.approx(2.0, rel=0.05)

    def test_deterministic_per_seed(self):
        arrivals = PoissonArrivals(SequentialScanWorkload(n=50))
        first = list(arrivals.timed_references(50, seed=3))
        second = list(arrivals.timed_references(50, seed=3))
        assert first == second


class TestDriveWithLatency:
    def test_hits_cost_nothing(self):
        workload = SequentialScanWorkload(n=2)
        arrivals = UniformArrivals(workload, references_per_ms=0.001)
        simulator = CacheSimulator(LRUPolicy(), capacity=4)
        report = drive_with_latency(
            simulator, arrivals.timed_references(10))
        assert report.hits == 8       # 2 compulsory misses, then hits
        assert report.misses == 2
        assert report.miss_response_ms.count == 2
        # Average over all requests is pulled down by the free hits.
        assert (report.request_latency_ms.mean
                < report.miss_response_ms.mean)

    def test_saturation_builds_queues(self):
        # A miss-heavy stream at high arrival rate must queue: the mean
        # response exceeds the bare service time.
        workload = TwoPoolWorkload(n1=100, n2=10_000)
        simulator = CacheSimulator(LRUPolicy(), capacity=10)
        fast = UniformArrivals(workload, references_per_ms=0.2)
        report = drive_with_latency(
            simulator, fast.timed_references(3000, seed=4))
        slow_simulator = CacheSimulator(LRUPolicy(), capacity=10)
        slow = UniformArrivals(workload, references_per_ms=0.001)
        relaxed = drive_with_latency(
            slow_simulator, slow.timed_references(3000, seed=4))
        assert (report.miss_response_ms.mean
                > relaxed.miss_response_ms.mean)

    def test_hit_ratio_reported(self):
        workload = SequentialScanWorkload(n=3)
        arrivals = UniformArrivals(workload)
        simulator = CacheSimulator(LRUPolicy(), capacity=3)
        report = drive_with_latency(simulator,
                                    arrivals.timed_references(9))
        assert report.hit_ratio == pytest.approx(6 / 9)
