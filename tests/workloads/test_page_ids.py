"""Bulk trace materialization: ``Workload.page_ids`` vs ``references``.

The contract: for a given seed, ``page_ids(count, seed)`` yields exactly
the page sequence that draining ``references(count, seed)`` would — same
RNG consumption, same order — or None when the stream carries metadata a
bare page-id array cannot represent. :meth:`CachedTrace.materialize`
relies on this to skip per-reference object construction entirely.
"""

from array import array

import pytest

from repro.sim import CachedTrace
from repro.workloads import ZipfianWorkload
from repro.workloads.base import SyntheticWorkload, compact_reference_pages
from repro.workloads.correlated import CorrelatedReferenceWrapper
from repro.workloads.hotspot import MovingHotspotWorkload
from repro.workloads.oltp import BankOLTPWorkload
from repro.workloads.sequential_scan import (
    ScanSwampingWorkload,
    SequentialScanWorkload,
)


class UniformIRM(SyntheticWorkload):
    """Minimal SyntheticWorkload exercising the base bulk sampler."""

    def reference_probabilities(self):
        return {page: 1.0 / 25 for page in range(1, 26)}


PLAIN_WORKLOADS = [
    ZipfianWorkload(n=400),
    ZipfianWorkload(n=37, alpha=0.9, beta=0.1),
    MovingHotspotWorkload(db_pages=2000, hot_pages=50, epoch_length=333),
    MovingHotspotWorkload(db_pages=2000, hot_pages=50, epoch_length=333,
                          drift_pages=7),
    SequentialScanWorkload(17),
    UniformIRM(),
]

METADATA_WORKLOADS = [
    BankOLTPWorkload(),
    ScanSwampingWorkload(),
    CorrelatedReferenceWrapper(ZipfianWorkload(n=100)),
]


class TestStreamIdentity:
    @pytest.mark.parametrize("workload", PLAIN_WORKLOADS,
                             ids=lambda w: type(w).__name__)
    @pytest.mark.parametrize("seed", [0, 5])
    def test_page_ids_matches_references(self, workload, seed):
        bulk = workload.page_ids(1000, seed=seed)
        drained = compact_reference_pages(
            workload.references(1000, seed=seed))
        assert bulk is not None and drained is not None
        assert list(bulk) == list(drained)

    @pytest.mark.parametrize("workload", PLAIN_WORKLOADS,
                             ids=lambda w: type(w).__name__)
    def test_page_ids_returns_compact_array(self, workload):
        bulk = workload.page_ids(64, seed=3)
        assert isinstance(bulk, array)
        assert bulk.typecode == "q"
        assert len(bulk) == 64

    def test_epoch_boundary_mid_stream(self):
        # A count that is not an epoch multiple exercises the chunked
        # fast path's final partial epoch.
        workload = MovingHotspotWorkload(db_pages=500, hot_pages=20,
                                         epoch_length=100)
        bulk = workload.page_ids(250, seed=2)
        drained = [r.page for r in workload.references(250, seed=2)]
        assert list(bulk) == drained


class TestMetadataStreams:
    @pytest.mark.parametrize("workload", METADATA_WORKLOADS,
                             ids=lambda w: type(w).__name__)
    def test_metadata_workloads_return_none(self, workload):
        assert workload.page_ids(50, seed=0) is None

    def test_materialize_falls_back_to_references(self):
        trace = CachedTrace.materialize(BankOLTPWorkload(), 300, 1)
        assert not trace.plain
        assert len(trace) == 300


class TestMaterialize:
    def test_plain_workload_materializes_compact(self):
        trace = CachedTrace.materialize(ZipfianWorkload(n=100), 500, 2)
        assert trace.plain
        assert len(trace) == 500

    def test_materialize_stream_unchanged_by_bulk_path(self):
        # The cached trace must contain the same stream the reference
        # generator produces, so seeded results are stable across the
        # bulk-materialization change.
        workload = ZipfianWorkload(n=100)
        trace = CachedTrace.materialize(workload, 500, 2)
        assert list(trace.page_ids()) == [
            r.page for r in workload.references(500, seed=2)]
