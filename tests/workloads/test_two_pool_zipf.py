"""Tests for the two-pool and Zipfian workload generators."""

import math
from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads import TwoPoolWorkload, ZipfianWorkload
from repro.workloads.zipfian import zipf_theta, zipfian_probabilities


class TestTwoPool:
    def test_rejects_bad_sizes(self):
        with pytest.raises(ConfigurationError):
            TwoPoolWorkload(n1=0, n2=10)
        with pytest.raises(ConfigurationError):
            TwoPoolWorkload(n1=10, n2=10)  # paper requires N1 < N2

    def test_strict_alternation(self):
        workload = TwoPoolWorkload(n1=5, n2=50)
        refs = list(workload.references(20, seed=1))
        for index, ref in enumerate(refs):
            if index % 2 == 0:
                assert ref.page < 5
            else:
                assert 5 <= ref.page < 55

    def test_deterministic_per_seed(self):
        workload = TwoPoolWorkload(n1=5, n2=50)
        first = [r.page for r in workload.references(100, seed=9)]
        second = [r.page for r in workload.references(100, seed=9)]
        third = [r.page for r in workload.references(100, seed=10)]
        assert first == second
        assert first != third

    def test_probabilities_match_paper_formula(self):
        workload = TwoPoolWorkload(n1=100, n2=10_000)
        probabilities = workload.reference_probabilities()
        assert probabilities[0] == pytest.approx(1 / 200)
        assert probabilities[100] == pytest.approx(1 / 20_000)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_pool_of(self):
        workload = TwoPoolWorkload(n1=3, n2=10)
        assert workload.pool_of(2) == 1
        assert workload.pool_of(3) == 2
        with pytest.raises(ConfigurationError):
            workload.pool_of(999)

    def test_paper_protocol_constants(self):
        workload = TwoPoolWorkload(n1=100, n2=10_000)
        assert workload.warmup_references == 1000
        assert workload.measured_references == 3000

    def test_empirical_frequency_matches_beta(self):
        workload = TwoPoolWorkload(n1=10, n2=100)
        counts = Counter(r.page for r in workload.references(40_000, seed=3))
        hot_share = sum(counts[p] for p in range(10)) / 40_000
        assert hot_share == pytest.approx(0.5, abs=0.01)

    def test_random_pool_mode(self):
        workload = TwoPoolWorkload(n1=10, n2=100,
                                   strict_alternation=False)
        refs = [r.page for r in workload.references(10_000, seed=2)]
        hot = sum(1 for p in refs if p < 10)
        assert hot == pytest.approx(5000, abs=300)


class TestZipfian:
    def test_theta_formula(self):
        assert zipf_theta(0.8, 0.2) == pytest.approx(
            math.log(0.8) / math.log(0.2))
        with pytest.raises(ConfigurationError):
            zipf_theta(1.0, 0.2)

    def test_probabilities_sum_to_one(self):
        probabilities = zipfian_probabilities(500)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_cdf_matches_paper_formula(self):
        # F(i) = (i/N)^theta must hold for the cumulative masses.
        n, alpha, beta = 100, 0.8, 0.2
        probabilities = zipfian_probabilities(n, alpha, beta)
        theta = zipf_theta(alpha, beta)
        cumulative = 0.0
        for i in range(1, n + 1):
            cumulative += probabilities[i]
            assert cumulative == pytest.approx((i / n) ** theta, rel=1e-9)

    def test_eighty_twenty_property(self):
        # A fraction alpha of references should hit a fraction beta of
        # pages: the mass of the hottest 20% must be ~80%.
        workload = ZipfianWorkload(n=1000, alpha=0.8, beta=0.2)
        probabilities = workload.reference_probabilities()
        hot_mass = sum(probabilities[i] for i in range(1, 201))
        assert hot_mass == pytest.approx(0.8, abs=0.001)

    def test_recursive_self_similarity(self):
        # Within the hottest beta fraction the 80-20 rule recurses:
        # the hottest 4% get 64%.
        workload = ZipfianWorkload(n=1000, alpha=0.8, beta=0.2)
        probabilities = workload.reference_probabilities()
        hottest = sum(probabilities[i] for i in range(1, 41))
        assert hottest == pytest.approx(0.64, abs=0.001)

    def test_sampling_matches_distribution(self):
        workload = ZipfianWorkload(n=100, alpha=0.8, beta=0.2)
        counts = Counter(r.page for r in workload.references(50_000, seed=4))
        top20 = sum(counts[i] for i in range(1, 21)) / 50_000
        assert top20 == pytest.approx(0.8, abs=0.02)

    def test_pages_are_one_based(self):
        workload = ZipfianWorkload(n=50)
        pages = {r.page for r in workload.references(5000, seed=5)}
        assert min(pages) >= 1
        assert max(pages) <= 50

    def test_deterministic_per_seed(self):
        workload = ZipfianWorkload(n=100)
        assert ([r.page for r in workload.references(50, seed=6)]
                == [r.page for r in workload.references(50, seed=6)])

    def test_hottest_pages_helper(self):
        workload = ZipfianWorkload(n=1000)
        assert list(workload.hottest_pages(0.02)) == list(range(1, 21))
