"""Tests for scan, hotspot, correlated, and combinator workloads."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.types import AccessKind
from repro.workloads import (
    BurstSpec,
    CorrelatedReferenceWrapper,
    MovingHotspotWorkload,
    ProbabilisticMix,
    ScanSwampingWorkload,
    SequentialScanWorkload,
    TwoPoolWorkload,
    concatenate,
    interleave,
)
from repro.workloads.sequential_scan import INTERACTIVE_PROCESS


class TestSequentialScan:
    def test_pages_in_order(self):
        workload = SequentialScanWorkload(n=5)
        assert [r.page for r in workload.references(7)] == [0, 1, 2, 3, 4,
                                                            0, 1]

    def test_offset_start(self):
        workload = SequentialScanWorkload(n=3, first_page=10)
        assert [r.page for r in workload.references(4)] == [10, 11, 12, 10]

    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SequentialScanWorkload(n=0)


class TestScanSwamping:
    def test_process_ids_distinguish_streams(self):
        workload = ScanSwampingWorkload(db_pages=1000, hot_pages=50,
                                        scan_processes=2, scan_share=0.5)
        refs = list(workload.references(2000, seed=1))
        processes = {r.process_id for r in refs}
        assert INTERACTIVE_PROCESS in processes
        assert {1, 2} <= processes

    def test_scanners_advance_sequentially(self):
        workload = ScanSwampingWorkload(db_pages=1000, hot_pages=50,
                                        scan_processes=1, scan_share=0.5)
        scan_pages = [r.page for r in workload.references(2000, seed=2)
                      if r.process_id == 1]
        deltas = [(b - a) % 1000
                  for a, b in zip(scan_pages, scan_pages[1:])]
        assert all(delta == 1 for delta in deltas)

    def test_interactive_hits_hot_set_mostly(self):
        workload = ScanSwampingWorkload(db_pages=10_000, hot_pages=100,
                                        hot_fraction=0.95,
                                        scan_processes=0, scan_share=0.0)
        refs = list(workload.references(10_000, seed=3))
        hot = sum(1 for r in refs if r.page < 100)
        assert hot / len(refs) == pytest.approx(0.95, abs=0.02)

    def test_interactive_only_strips_scanners(self):
        workload = ScanSwampingWorkload(scan_processes=2, scan_share=0.4)
        quiet = workload.interactive_only()
        assert quiet.scan_processes == 0
        refs = list(quiet.references(100, seed=4))
        assert all(r.process_id == INTERACTIVE_PROCESS for r in refs)

    def test_invalid_configurations(self):
        with pytest.raises(ConfigurationError):
            ScanSwampingWorkload(hot_pages=0)
        with pytest.raises(ConfigurationError):
            ScanSwampingWorkload(scan_processes=0, scan_share=0.5)


class TestMovingHotspot:
    def test_hot_set_jumps_each_epoch(self):
        workload = MovingHotspotWorkload(db_pages=1000, hot_pages=10,
                                         hot_fraction=1.0, epoch_length=100)
        refs = [r.page for r in workload.references(200, seed=5)]
        first_epoch = set(refs[:100])
        second_epoch = set(refs[100:])
        assert first_epoch.isdisjoint(second_epoch)

    def test_epoch_probabilities_sum_to_one(self):
        workload = MovingHotspotWorkload(db_pages=100, hot_pages=10)
        probabilities = workload.epoch_probabilities(3)
        assert sum(probabilities.values()) == pytest.approx(1.0)

    def test_drift_mode_moves_gradually(self):
        workload = MovingHotspotWorkload(db_pages=1000, hot_pages=10,
                                         epoch_length=100, drift_pages=2)
        assert workload.hot_start(0) == 0
        assert workload.hot_start(1) == 2
        assert workload.hot_start(5) == 10

    def test_hot_fraction_respected(self):
        workload = MovingHotspotWorkload(db_pages=10_000, hot_pages=100,
                                         hot_fraction=0.8,
                                         epoch_length=100_000)
        refs = [r.page for r in workload.references(20_000, seed=6)]
        hot = sum(1 for p in refs if p < 100)
        assert hot / len(refs) == pytest.approx(0.8, abs=0.02)


class TestCorrelatedWrapper:
    def test_bursts_repeat_the_same_page(self):
        base = TwoPoolWorkload(n1=10, n2=100)
        workload = CorrelatedReferenceWrapper(
            base, burst_fraction=1.0,
            spec=BurstSpec(extra_references=2, max_gap=2))
        refs = list(workload.references(300, seed=7))
        counts = Counter(r.page for r in refs)
        # With every reference bursting, multiplicity must be >= 2 for
        # most touched pages.
        multi = sum(1 for c in counts.values() if c >= 2)
        assert multi >= len(counts) * 0.5

    def test_follow_ups_share_txn_id_and_are_writes(self):
        base = SequentialScanWorkload(n=1000)
        workload = CorrelatedReferenceWrapper(
            base, burst_fraction=1.0,
            spec=BurstSpec(extra_references=1, max_gap=1,
                           write_follow_up=True))
        refs = list(workload.references(50, seed=8))
        by_txn = {}
        for ref in refs:
            if ref.txn_id is not None:
                by_txn.setdefault(ref.txn_id, []).append(ref)
        assert by_txn
        for txn_refs in by_txn.values():
            pages = {r.page for r in txn_refs}
            assert len(pages) == 1
            if len(txn_refs) > 1:
                assert any(r.kind is AccessKind.WRITE for r in txn_refs)

    def test_zero_fraction_passthrough(self):
        base = SequentialScanWorkload(n=10)
        workload = CorrelatedReferenceWrapper(base, burst_fraction=0.0)
        assert ([r.page for r in workload.references(10, seed=9)]
                == [r.page for r in base.references(10, seed=9)])

    def test_exact_count_emitted(self):
        base = TwoPoolWorkload(n1=5, n2=50)
        workload = CorrelatedReferenceWrapper(base, burst_fraction=0.5)
        assert len(list(workload.references(137, seed=10))) == 137


class TestCombinators:
    def test_concatenate_phases(self):
        first = SequentialScanWorkload(n=3)
        second = SequentialScanWorkload(n=3, first_page=100)
        combined = concatenate((first, 3), (second, 3))
        pages = [r.page for r in combined.references(6, seed=0)]
        assert pages == [0, 1, 2, 100, 101, 102]

    def test_concatenate_truncates(self):
        combined = concatenate((SequentialScanWorkload(n=10), 10))
        assert len(list(combined.references(4, seed=0))) == 4

    def test_interleave_round_robin(self):
        a = SequentialScanWorkload(n=5)
        b = SequentialScanWorkload(n=5, first_page=100)
        pages = [r.page for r in interleave(a, b).references(6, seed=0)]
        assert pages == [0, 100, 1, 101, 2, 102]

    def test_probabilistic_mix_respects_weights(self):
        a = SequentialScanWorkload(n=10)              # pages < 10
        b = SequentialScanWorkload(n=10, first_page=100)
        mix = ProbabilisticMix([(a, 0.8), (b, 0.2)])
        pages = [r.page for r in mix.references(5000, seed=11)]
        low = sum(1 for p in pages if p < 10)
        assert low / len(pages) == pytest.approx(0.8, abs=0.03)

    def test_mix_rejects_bad_weights(self):
        with pytest.raises(ConfigurationError):
            ProbabilisticMix([])
        with pytest.raises(ConfigurationError):
            ProbabilisticMix([(SequentialScanWorkload(n=2), -1.0)])

    def test_combinator_page_universe(self):
        a = SequentialScanWorkload(n=2)
        b = SequentialScanWorkload(n=2, first_page=10)
        assert list(interleave(a, b).pages()) == [0, 1, 10, 11]
