"""Tests for the executed (engine-backed) customer lookup workload."""

from collections import Counter

import pytest

from repro.errors import ConfigurationError
from repro.workloads import CustomerLookupWorkload


@pytest.fixture(scope="module")
def workload():
    return CustomerLookupWorkload(customers=500, update_fraction=0.3,
                                  abort_probability=0.1,
                                  locality_run_length=3)


class TestCustomerLookupWorkload:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CustomerLookupWorkload(customers=0)
        with pytest.raises(ConfigurationError):
            CustomerLookupWorkload(update_fraction=2.0)

    def test_emits_exact_count(self, workload):
        assert len(list(workload.references(503, seed=1))) == 503

    def test_reference_pattern_alternates_index_and_records(self, workload):
        refs = list(workload.references(2000, seed=2))
        hot = set(workload.hot_pages())
        hot_refs = sum(1 for r in refs if r.page in hot)
        # Every lookup touches root+leaf then a record page; with updates
        # re-touching records, index pages are 40-70% of traffic.
        assert 0.3 < hot_refs / len(refs) < 0.8

    def test_hot_pages_are_index_pages(self, workload):
        hot = workload.hot_pages()
        # 500 customers at 200 entries/leaf -> 3 leaves (+1 root).
        assert len(hot) == 4

    def test_updates_produce_write_references(self, workload):
        refs = list(workload.references(2000, seed=3))
        assert any(r.is_write for r in refs)

    def test_transactions_annotate_references(self, workload):
        refs = list(workload.references(500, seed=4))
        assert any(r.process_id is not None for r in refs)

    def test_retries_re_reference_same_pages(self):
        # With heavy aborts, retried transactions re-touch pages: the
        # multiset of pages shows near-duplicate bursts.
        workload = CustomerLookupWorkload(customers=200,
                                          abort_probability=0.4,
                                          update_fraction=0.0)
        refs = list(workload.references(2000, seed=5))
        counts = Counter(r.page for r in refs)
        assert max(counts.values()) > 2

    def test_lru2_beats_lru_on_executed_workload(self):
        """The headline claim on engine-generated references."""
        from repro.core import LRUKPolicy
        from repro.policies import LRUPolicy
        from repro.sim import CacheSimulator

        workload = CustomerLookupWorkload(customers=1000,
                                          update_fraction=0.0)
        refs = list(workload.references(12_000, seed=6))
        ratios = {}
        for name, policy in (("lru", LRUPolicy()),
                             ("lru2", LRUKPolicy(k=2))):
            simulator = CacheSimulator(policy, capacity=8)
            for index, ref in enumerate(refs):
                if index == 3000:
                    simulator.start_measurement()
                simulator.access(ref)
            ratios[name] = simulator.hit_ratio
        # 1000 customers -> 5 leaves + root: LRU-2 pins the 6 hot pages
        # in 8 slots; LRU-1 churns them against record pages.
        assert ratios["lru2"] > ratios["lru"] + 0.1
