"""Tests for trace replay."""

import pytest

from repro.errors import ConfigurationError
from repro.storage import write_trace
from repro.types import AccessKind, Reference
from repro.workloads import TraceReplayWorkload


class TestTraceReplay:
    def test_replays_exactly(self):
        refs = [Reference(page=p) for p in [3, 1, 4, 1, 5]]
        workload = TraceReplayWorkload(refs)
        assert list(workload.references(5)) == refs

    def test_accepts_bare_page_ids(self):
        workload = TraceReplayWorkload([7, 8, 7])
        assert [r.page for r in workload.references(3)] == [7, 8, 7]

    def test_truncation(self):
        workload = TraceReplayWorkload([1, 2, 3])
        assert [r.page for r in workload.references(2)] == [1, 2]

    def test_overrun_raises_without_cycle(self):
        workload = TraceReplayWorkload([1, 2])
        with pytest.raises(ConfigurationError):
            list(workload.references(3))

    def test_cycle_mode_loops(self):
        workload = TraceReplayWorkload([1, 2], cycle=True)
        assert [r.page for r in workload.references(5)] == [1, 2, 1, 2, 1]

    def test_seed_is_irrelevant(self):
        workload = TraceReplayWorkload([9, 8, 7])
        assert (list(workload.references(3, seed=1))
                == list(workload.references(3, seed=99)))

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceReplayWorkload([])

    def test_pages_universe(self):
        workload = TraceReplayWorkload([5, 3, 5, 9])
        assert list(workload.pages()) == [3, 5, 9]

    def test_metadata_preserved(self):
        refs = [Reference(page=1, kind=AccessKind.WRITE, process_id=4,
                          txn_id=2)]
        workload = TraceReplayWorkload(refs)
        replayed = next(iter(workload.references(1)))
        assert replayed == refs[0]

    def test_from_file_roundtrip(self, tmp_path):
        path = tmp_path / "replay.trace"
        refs = [Reference(page=p, kind=AccessKind.WRITE) for p in range(6)]
        write_trace(path, refs)
        workload = TraceReplayWorkload.from_file(path)
        assert len(workload) == 6
        assert list(workload.references(6)) == refs

    def test_usable_in_experiment_runner(self):
        from repro.sim import PolicySpec, run_paper_protocol
        workload = TraceReplayWorkload([p % 5 for p in range(200)])
        result = run_paper_protocol(workload, PolicySpec.lru(),
                                    capacity=3, warmup=50, measured=150)
        assert 0.0 <= result.hit_ratio <= 1.0
