"""Tests for the index nested-loop join."""

import pytest

from repro.buffer import BufferPool, TraceRecorder
from repro.db import (
    Filter,
    IndexNestedLoopJoin,
    Limit,
    SeqScan,
    build_customer_database,
)
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk


@pytest.fixture(scope="module")
def database():
    pool = BufferPool(SimulatedDisk(), LRUPolicy(), capacity=512)
    return build_customer_database(pool, customers=200)


class TestIndexNestedLoopJoin:
    def test_self_join_on_key(self, database):
        # Join customers to themselves through the index: every row
        # matches itself.
        join = IndexNestedLoopJoin(
            outer=Limit(SeqScan(database.heap), count=10),
            inner_index=database.index,
            inner_heap=database.heap,
            outer_key=lambda row: row[0])
        rows = join.execute()
        assert len(rows) == 10
        for row in rows:
            assert row[0] == row[3]  # outer id == inner id

    def test_shifted_join(self, database):
        # Join customer i to customer i+1 through the index.
        join = IndexNestedLoopJoin(
            outer=Limit(SeqScan(database.heap), count=5),
            inner_index=database.index,
            inner_heap=database.heap,
            outer_key=lambda row: row[0] + 1)
        rows = join.execute()
        assert [row[3] for row in rows] == [1, 2, 3, 4, 5]

    def test_missing_matches_dropped(self, database):
        join = IndexNestedLoopJoin(
            outer=SeqScan(database.heap),
            inner_index=database.index,
            inner_heap=database.heap,
            outer_key=lambda row: row[0] + 150)  # only ids < 50 match
        rows = join.execute()
        assert len(rows) == 50

    def test_composes_with_filter(self, database):
        join = IndexNestedLoopJoin(
            outer=Filter(SeqScan(database.heap),
                         predicate=lambda row: row[0] < 4),
            inner_index=database.index,
            inner_heap=database.heap,
            outer_key=lambda row: row[0])
        assert len(join.execute()) == 4

    def test_inner_index_pages_dominate_the_reference_string(self, database):
        """The join's buffer-relevant signature: index pages re-touched
        once per outer row, outer/record pages streaming."""
        recorder = TraceRecorder()
        database.pool.observer = recorder
        try:
            IndexNestedLoopJoin(
                outer=SeqScan(database.heap),
                inner_index=database.index,
                inner_heap=database.heap,
                outer_key=lambda row: row[0]).execute()
        finally:
            database.pool.observer = None
        root = database.index.root_page_id
        root_touches = sum(1 for p in recorder.pages() if p == root)
        assert root_touches == 200  # once per outer row
