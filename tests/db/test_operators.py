"""Tests for the query operator layer."""

import pytest

from repro.buffer import BufferPool, TraceRecorder
from repro.db import (
    Filter,
    IndexLookup,
    IndexRangeScan,
    Limit,
    Project,
    SeqScan,
    build_customer_database,
)
from repro.errors import ConfigurationError, RecordNotFoundError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk


@pytest.fixture(scope="module")
def database():
    pool = BufferPool(SimulatedDisk(), LRUPolicy(), capacity=512)
    return build_customer_database(pool, customers=300)


class TestLeafOperators:
    def test_seq_scan_returns_all_rows(self, database):
        rows = SeqScan(database.heap).execute()
        assert len(rows) == 300
        assert rows[0][0] == 0
        assert rows[-1][0] == 299

    def test_index_lookup_finds_row(self, database):
        rows = IndexLookup(database.index, database.heap, key=42).execute()
        assert len(rows) == 1
        assert rows[0][0] == 42
        assert rows[0][2] == "cust-00000042"

    def test_index_lookup_missing_key(self, database):
        with pytest.raises(RecordNotFoundError):
            IndexLookup(database.index, database.heap, key=9999).execute()
        rows = IndexLookup(database.index, database.heap, key=9999,
                           missing_ok=True).execute()
        assert rows == []

    def test_range_scan_in_key_order(self, database):
        rows = IndexRangeScan(database.index, database.heap,
                              low=10, high=20).execute()
        assert [row[0] for row in rows] == list(range(10, 21))

    def test_range_scan_validates_bounds(self, database):
        with pytest.raises(ConfigurationError):
            IndexRangeScan(database.index, database.heap, low=5, high=1)


class TestTransformers:
    def test_filter(self, database):
        rows = Filter(IndexRangeScan(database.index, database.heap, 0, 50),
                      predicate=lambda row: row[0] % 10 == 0).execute()
        assert [row[0] for row in rows] == [0, 10, 20, 30, 40, 50]

    def test_project(self, database):
        rows = Project(IndexLookup(database.index, database.heap, 7),
                       columns=[2, 0]).execute()
        assert rows == [["cust-00000007", 7]]

    def test_project_out_of_range(self, database):
        operator = Project(IndexLookup(database.index, database.heap, 7),
                           columns=[99])
        with pytest.raises(ConfigurationError):
            operator.execute()

    def test_limit(self, database):
        rows = Limit(SeqScan(database.heap), count=5).execute()
        assert len(rows) == 5
        assert Limit(SeqScan(database.heap), count=0).execute() == []

    def test_composed_plan(self, database):
        plan = Limit(
            Project(
                Filter(SeqScan(database.heap),
                       predicate=lambda row: row[0] >= 100),
                columns=[0]),
            count=3)
        assert plan.execute() == [[100], [101], [102]]


class TestReferenceStrings:
    def test_lookup_touches_three_pages(self, database):
        recorder = TraceRecorder()
        database.pool.observer = recorder
        try:
            IndexLookup(database.index, database.heap, key=123).execute()
        finally:
            database.pool.observer = None
        assert len(recorder) == 3  # root, leaf, record page

    def test_limit_stops_page_references_early(self, database):
        recorder = TraceRecorder()
        database.pool.observer = recorder
        try:
            Limit(SeqScan(database.heap), count=2).execute()
        finally:
            database.pool.observer = None
        # Two rows live on the first record page: one page reference.
        assert len(recorder) <= 2

    def test_seq_scan_touches_every_record_page_once(self, database):
        recorder = TraceRecorder()
        database.pool.observer = recorder
        try:
            SeqScan(database.heap).execute()
        finally:
            database.pool.observer = None
        assert recorder.pages() == database.record_pages()
