"""Tests for heap files and the B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.db import BPlusTree, HeapFile
from repro.db.record import RecordId
from repro.errors import DuplicateKeyError, RecordNotFoundError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk


def make_pool(capacity=64):
    return BufferPool(SimulatedDisk(), LRUPolicy(), capacity)


class TestHeapFile:
    def test_insert_get_roundtrip(self):
        heap = HeapFile(make_pool())
        rid = heap.insert(b"record one")
        assert heap.get(rid) == b"record one"

    def test_records_span_pages(self):
        heap = HeapFile(make_pool())
        big = b"r" * 1500
        rids = [heap.insert(big) for _ in range(10)]
        assert heap.page_count > 1
        for rid in rids:
            assert heap.get(rid) == big

    def test_update(self):
        heap = HeapFile(make_pool())
        rid = heap.insert(b"before")
        heap.update(rid, b"after")
        assert heap.get(rid) == b"after"

    def test_delete(self):
        heap = HeapFile(make_pool())
        rid = heap.insert(b"gone")
        heap.delete(rid)
        with pytest.raises(RecordNotFoundError):
            heap.get(rid)

    def test_get_unknown_page_rejected(self):
        heap = HeapFile(make_pool())
        with pytest.raises(RecordNotFoundError):
            heap.get(RecordId(page_id=999, slot=0))

    def test_scan_returns_all_in_order(self):
        heap = HeapFile(make_pool())
        expected = []
        for index in range(50):
            record = f"row-{index:03d}".encode()
            heap.insert(record)
            expected.append(record)
        assert [record for _, record in heap.scan()] == expected
        assert len(heap) == 50

    def test_scan_generates_buffer_traffic(self):
        pool = make_pool()
        heap = HeapFile(pool)
        for index in range(20):
            heap.insert(b"data" * 100)
        reads_before = pool.stats.references
        list(heap.scan())
        assert pool.stats.references > reads_before


class TestBPlusTree:
    def test_insert_search_roundtrip(self):
        tree = BPlusTree(make_pool(), value_size=10)
        rid = RecordId(page_id=3, slot=1)
        tree.insert(7, rid.to_bytes())
        assert RecordId.from_bytes(tree.search(7)) == rid

    def test_missing_key_rejected(self):
        tree = BPlusTree(make_pool(), value_size=10)
        with pytest.raises(RecordNotFoundError):
            tree.search(404)

    def test_duplicate_key_rejected(self):
        tree = BPlusTree(make_pool(), value_size=10)
        tree.insert(1, b"0123456789")
        with pytest.raises(DuplicateKeyError):
            tree.insert(1, b"9876543210")

    def test_allow_update_replaces(self):
        tree = BPlusTree(make_pool(), value_size=10)
        tree.insert(1, b"0123456789")
        tree.insert(1, b"9876543210", allow_update=True)
        assert tree.search(1) == b"9876543210"

    def test_splits_grow_height(self):
        tree = BPlusTree(make_pool(256), value_size=10, max_leaf_keys=4,
                         max_internal_keys=4)
        for key in range(100):
            tree.insert(key, b"%010d" % key)
        assert tree.height() >= 3
        for key in range(100):
            assert tree.search(key) == b"%010d" % key
        tree.check_invariants()

    def test_random_insert_order(self):
        from repro.stats import SeededRng
        rng = SeededRng(5)
        keys = list(range(300))
        rng.shuffle(keys)
        tree = BPlusTree(make_pool(256), value_size=10, max_leaf_keys=8,
                         max_internal_keys=8)
        for key in keys:
            tree.insert(key, b"%010d" % key)
        tree.check_invariants()
        assert len(tree) == 300
        assert [k for k, _ in tree.range_scan(100, 110)] == list(
            range(100, 111))

    def test_range_scan_empty_range(self):
        tree = BPlusTree(make_pool(), value_size=10)
        tree.insert(5, b"0123456789")
        assert list(tree.range_scan(10, 5)) == []
        assert list(tree.range_scan(6, 9)) == []

    def test_lazy_delete(self):
        tree = BPlusTree(make_pool(), value_size=10, max_leaf_keys=4)
        for key in range(20):
            tree.insert(key, b"%010d" % key)
        tree.delete(7)
        with pytest.raises(RecordNotFoundError):
            tree.search(7)
        with pytest.raises(RecordNotFoundError):
            tree.delete(7)
        assert len(tree) == 19

    def test_monotone_load_packs_leaves(self):
        tree = BPlusTree(make_pool(256), value_size=10, max_leaf_keys=10)
        for key in range(100):
            tree.insert(key, b"%010d" % key)
        assert len(tree.leaf_page_ids()) == 10  # fully packed

    def test_contains(self):
        tree = BPlusTree(make_pool(), value_size=10)
        tree.insert(3, b"0123456789")
        assert tree.contains(3)
        assert not tree.contains(4)

    @given(keys=st.lists(st.integers(min_value=0, max_value=10_000),
                         min_size=1, max_size=150, unique=True))
    @settings(max_examples=30, deadline=None)
    def test_property_all_inserted_keys_found(self, keys):
        tree = BPlusTree(make_pool(512), value_size=10, max_leaf_keys=6,
                         max_internal_keys=6)
        for key in keys:
            tree.insert(key, b"%010d" % key)
        tree.check_invariants()
        for key in keys:
            assert tree.search(key) == b"%010d" % key
        scanned = [k for k, _ in tree.range_scan(0, 10_000)]
        assert scanned == sorted(keys)
