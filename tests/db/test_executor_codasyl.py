"""Tests for the Example 1.1 customer database and the CODASYL engine."""

import pytest

from repro.buffer import BufferPool, TraceRecorder
from repro.db import build_bank_database, build_customer_database
from repro.db.codasyl import CodasylSchema, RecordType, SetType
from repro.errors import ConfigurationError, DatabaseError, RecordNotFoundError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk


def make_pool(capacity=256):
    return BufferPool(SimulatedDisk(), LRUPolicy(), capacity)


@pytest.fixture(scope="module")
def customer_db():
    pool = make_pool(512)
    return build_customer_database(pool, customers=1000)


class TestCustomerDatabase:
    def test_example_11_geometry(self, customer_db):
        # 1000 customers, 2 records per page -> 500 record pages;
        # 200 index entries per leaf -> 5 leaf pages.
        assert len(customer_db.record_pages()) == 500
        assert len(customer_db.index_leaf_pages()) == 5

    def test_lookup_returns_fields(self, customer_db):
        fields = customer_db.lookup(123)
        assert fields[0] == 123
        assert fields[2] == "cust-00000123"

    def test_lookup_touches_index_then_record(self, customer_db):
        recorder = TraceRecorder()
        customer_db.pool.observer = recorder
        try:
            customer_db.lookup(777)
        finally:
            customer_db.pool.observer = None
        pages = recorder.pages()
        # Root, leaf, record: the I, R pattern of Example 1.1 (plus root).
        assert pages[0] == customer_db.index.root_page_id
        assert pages[1] in customer_db.index_leaf_pages()
        assert pages[2] in customer_db.record_pages()

    def test_update_customer_balance(self, customer_db):
        customer_db.update_customer(5, new_balance=4242)
        assert customer_db.lookup(5)[1] == 4242

    def test_unknown_customer_rejected(self, customer_db):
        with pytest.raises(RecordNotFoundError):
            customer_db.lookup(10 ** 9)

    def test_scan_all_counts_records(self, customer_db):
        assert customer_db.scan_all() == 1000


class TestCodasylSchema:
    def test_duplicate_record_types_rejected(self):
        with pytest.raises(ConfigurationError):
            CodasylSchema(
                record_types=[RecordType("a", count=1),
                              RecordType("a", count=2)],
                set_types=[])

    def test_unknown_set_member_rejected(self):
        with pytest.raises(ConfigurationError):
            CodasylSchema(
                record_types=[RecordType("a", count=1)],
                set_types=[SetType("s", owner="a", member="ghost")])


class TestBankDatabase:
    @pytest.fixture(scope="class")
    def bank(self):
        pool = make_pool(512)
        return build_bank_database(pool, branches=5, tellers=20,
                                   accounts=300, seed=1)

    def test_calc_lookup_touches_one_page(self, bank):
        recorder = TraceRecorder()
        bank.pool.observer = recorder
        try:
            fields = bank.find_calc("account", 42)
        finally:
            bank.pool.observer = None
        assert fields[0] == 42
        assert len(recorder) == 1

    def test_every_account_reachable_by_calc(self, bank):
        for key in range(300):
            assert bank.find_calc("account", key)[0] == key

    def test_set_navigation_walks_the_chain(self, bank):
        members = list(bank.walk_set("branch_accounts", 0))
        ordinals = [fields[0] for fields in members]
        assert len(ordinals) == len(set(ordinals))  # no cycles/dups

    def test_all_accounts_partitioned_across_branches(self, bank):
        seen = []
        for branch in range(5):
            seen.extend(fields[0]
                        for fields in bank.walk_set("branch_accounts",
                                                    branch))
        assert sorted(seen) == list(range(300))

    def test_walk_limit_respected(self, bank):
        limited = list(bank.walk_set("branch_accounts", 1, limit=3))
        assert len(limited) <= 3

    def test_navigation_touches_member_pages(self, bank):
        recorder = TraceRecorder()
        bank.pool.observer = recorder
        try:
            list(bank.walk_set("branch_accounts", 2, limit=10))
        finally:
            bank.pool.observer = None
        # Owner page + one page access per chain step.
        assert len(recorder) >= 2

    def test_update_record_dirties_page(self, bank):
        bank.update_record("teller", 3)
        storage = bank.storage("teller")
        rid = storage.rid_of(3)
        frame = bank.pool.frame_of(rid.page_id)
        assert frame.dirty or bank.pool.stats.dirty_evictions >= 0

    def test_owner_and_member_conflict_rejected(self):
        pool = make_pool()
        schema = CodasylSchema(
            record_types=[RecordType("a", count=2),
                          RecordType("b", count=4),
                          RecordType("c", count=8)],
            set_types=[SetType("s1", owner="a", member="b"),
                       SetType("s2", owner="b", member="c")])
        from repro.db import CodasylDatabase
        with pytest.raises(DatabaseError):
            CodasylDatabase(pool, schema)
