"""Stateful property tests: data structures against oracle models.

Hypothesis drives random operation sequences against the slotted page and
the B+-tree while a plain-dict model tracks what the contents *should*
be; any divergence shrinks to a minimal failing sequence.
"""

import pytest
from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.db import BPlusTree
from repro.db.slotted_page import SlottedPage
from repro.errors import PageOverflowError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk

keys = st.integers(min_value=0, max_value=500)
payloads = st.binary(min_size=1, max_size=60)


class SlottedPageMachine(RuleBasedStateMachine):
    """SlottedPage vs a {slot: bytes} model."""

    def __init__(self):
        super().__init__()
        self.page = SlottedPage()
        self.model = {}

    @rule(record=payloads)
    def insert(self, record):
        if not self.page.fits(record):
            return
        slot = self.page.insert(record)
        assert slot not in self.model
        self.model[slot] = record

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def get(self, data):
        slot = data.draw(st.sampled_from(sorted(self.model)))
        assert self.page.get(slot) == self.model[slot]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        slot = data.draw(st.sampled_from(sorted(self.model)))
        self.page.delete(slot)
        del self.model[slot]

    @precondition(lambda self: self.model)
    @rule(data=st.data(), record=payloads)
    def update(self, data, record):
        slot = data.draw(st.sampled_from(sorted(self.model)))
        try:
            self.page.update(slot, record)
        except PageOverflowError:
            return  # legal refusal when the grown record cannot fit
        self.model[slot] = record

    @rule()
    def roundtrip_through_payload(self):
        self.page = SlottedPage(self.page.to_payload())

    @invariant()
    def contents_match_model(self):
        live = dict(self.page.records())
        assert live == self.model


class BPlusTreeMachine(RuleBasedStateMachine):
    """BPlusTree vs a {key: value} model, with tiny fan-out for splits."""

    def __init__(self):
        super().__init__()
        pool = BufferPool(SimulatedDisk(), LRUPolicy(), capacity=512)
        self.tree = BPlusTree(pool, value_size=10, max_leaf_keys=4,
                              max_internal_keys=4)
        self.model = {}

    @staticmethod
    def _value(key: int) -> bytes:
        return b"%010d" % key

    @rule(key=keys)
    def insert(self, key):
        if key in self.model:
            self.tree.insert(key, self._value(key + 1), allow_update=True)
            self.model[key] = self._value(key + 1)
        else:
            self.tree.insert(key, self._value(key))
            self.model[key] = self._value(key)

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def delete(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        self.tree.delete(key)
        del self.model[key]

    @precondition(lambda self: self.model)
    @rule(data=st.data())
    def search_present(self, data):
        key = data.draw(st.sampled_from(sorted(self.model)))
        assert self.tree.search(key) == self.model[key]

    @rule(key=keys)
    def search_any(self, key):
        assert self.tree.contains(key) == (key in self.model)

    @rule(low=keys, high=keys)
    def range_scan_matches(self, low, high):
        if low > high:
            low, high = high, low
        scanned = dict(self.tree.range_scan(low, high))
        expected = {k: v for k, v in self.model.items()
                    if low <= k <= high}
        assert scanned == expected

    @invariant()
    def ordered_and_complete(self):
        self.tree.check_invariants()


TestSlottedPageStateful = SlottedPageMachine.TestCase
TestSlottedPageStateful.settings = settings(
    max_examples=40, stateful_step_count=40, deadline=None)

TestBPlusTreeStateful = BPlusTreeMachine.TestCase
TestBPlusTreeStateful.settings = settings(
    max_examples=25, stateful_step_count=50, deadline=None)
