"""Tests for slotted pages and record encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.db.record import RecordId, decode_fields, encode_fields
from repro.db.slotted_page import SlottedPage
from repro.errors import DatabaseError, PageOverflowError


class TestRecordEncoding:
    def test_roundtrip_mixed_fields(self):
        fields = [42, "hello", b"\x00\x01", -7, ""]
        assert decode_fields(encode_fields(fields)) == fields

    @given(fields=st.lists(
        st.one_of(st.integers(min_value=-2**62, max_value=2**62),
                  st.text(max_size=40),
                  st.binary(max_size=40)),
        max_size=8))
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_any_fields(self, fields):
        assert decode_fields(encode_fields(fields)) == fields

    def test_truncated_record_rejected(self):
        encoded = encode_fields([123456789, "text"])
        with pytest.raises(DatabaseError):
            decode_fields(encoded[:-3])

    def test_unsupported_type_rejected(self):
        with pytest.raises(DatabaseError):
            encode_fields([3.14])

    def test_record_id_roundtrip(self):
        rid = RecordId(page_id=1234, slot=56)
        assert RecordId.from_bytes(rid.to_bytes()) == rid
        assert len(rid.to_bytes()) == RecordId.encoded_size()


class TestSlottedPage:
    def test_insert_and_get(self):
        page = SlottedPage()
        slot = page.insert(b"first")
        assert page.get(slot) == b"first"

    def test_multiple_records_keep_slots(self):
        page = SlottedPage()
        slots = [page.insert(f"record-{i}".encode()) for i in range(10)]
        for index, slot in enumerate(slots):
            assert page.get(slot) == f"record-{index}".encode()

    def test_payload_roundtrip(self):
        page = SlottedPage()
        page.insert(b"alpha")
        page.insert(b"beta")
        recovered = SlottedPage(page.to_payload())
        assert recovered.get(0) == b"alpha"
        assert recovered.get(1) == b"beta"

    def test_delete_tombstones(self):
        page = SlottedPage()
        slot = page.insert(b"doomed")
        page.delete(slot)
        with pytest.raises(DatabaseError):
            page.get(slot)
        with pytest.raises(DatabaseError):
            page.delete(slot)

    def test_tombstone_slot_reused(self):
        page = SlottedPage()
        slot_a = page.insert(b"a")
        page.insert(b"b")
        page.delete(slot_a)
        slot_c = page.insert(b"c")
        assert slot_c == slot_a
        assert page.get(slot_c) == b"c"

    def test_update_in_place_smaller(self):
        page = SlottedPage()
        slot = page.insert(b"longer record")
        page.update(slot, b"short")
        assert page.get(slot) == b"short"

    def test_update_grows_via_compaction(self):
        page = SlottedPage()
        slot = page.insert(b"tiny")
        page.insert(b"other")
        page.update(slot, b"much longer record than before")
        assert page.get(slot) == b"much longer record than before"
        assert page.get(1) == b"other"

    def test_fill_until_overflow(self):
        page = SlottedPage()
        record = b"x" * 100
        count = 0
        while page.fits(record):
            page.insert(record)
            count += 1
        assert count > 30
        with pytest.raises(PageOverflowError):
            page.insert(record)

    def test_compaction_reclaims_deleted_space(self):
        page = SlottedPage()
        record = b"y" * 200
        slots = []
        while page.fits(record):
            slots.append(page.insert(record))
        for slot in slots[: len(slots) // 2]:
            page.delete(slot)
        # Space was reclaimed: more inserts now succeed.
        inserted = 0
        while page.fits(record) or inserted == 0:
            page.insert(record)
            inserted += 1
            if inserted > len(slots):
                break
        assert inserted >= len(slots) // 2

    def test_oversized_record_rejected_outright(self):
        page = SlottedPage()
        with pytest.raises(PageOverflowError):
            page.insert(b"z" * 5000)

    def test_records_iterates_live_only(self):
        page = SlottedPage()
        page.insert(b"keep")
        doomed = page.insert(b"drop")
        page.insert(b"also-keep")
        page.delete(doomed)
        assert [record for _, record in page.records()] == [b"keep",
                                                            b"also-keep"]
        assert page.live_records == 2

    def test_bad_slot_rejected(self):
        page = SlottedPage()
        with pytest.raises(DatabaseError):
            page.get(0)
        with pytest.raises(DatabaseError):
            page.get(-1)

    @given(records=st.lists(st.binary(min_size=1, max_size=120),
                            min_size=1, max_size=25))
    @settings(max_examples=75, deadline=None)
    def test_roundtrip_property(self, records):
        page = SlottedPage()
        slots = []
        for record in records:
            if not page.fits(record):
                break
            slots.append((page.insert(record), record))
        recovered = SlottedPage(page.to_payload())
        for slot, record in slots:
            assert recovered.get(slot) == record
