"""Additional edge-case tests for record encoding and RIDs."""

import pytest

from repro.db.record import RecordId, decode_fields, encode_fields
from repro.errors import DatabaseError


class TestRecordEncodingEdges:
    def test_empty_field_list(self):
        assert decode_fields(encode_fields([])) == []

    def test_negative_and_boundary_integers(self):
        fields = [0, -1, 2 ** 62, -(2 ** 62)]
        assert decode_fields(encode_fields(fields)) == fields

    def test_unicode_strings(self):
        fields = ["héllo wörld", "данные", "ページ"]
        assert decode_fields(encode_fields(fields)) == fields

    def test_empty_string_and_bytes_distinct(self):
        decoded = decode_fields(encode_fields(["", b""]))
        assert decoded == ["", b""]
        assert isinstance(decoded[0], str)
        assert isinstance(decoded[1], bytes)

    def test_boolean_rejected_explicitly(self):
        # bool is an int subclass; silently encoding it would decode as
        # an int and corrupt the schema, so it must be refused.
        with pytest.raises(DatabaseError):
            encode_fields([True])

    def test_too_short_buffer_rejected(self):
        with pytest.raises(DatabaseError):
            decode_fields(b"\x01")

    def test_unknown_tag_rejected(self):
        raw = bytearray(encode_fields([5]))
        raw[2] = 0x77  # clobber the type tag
        with pytest.raises(DatabaseError):
            decode_fields(bytes(raw))


class TestRecordIdEdges:
    def test_ordering_is_page_then_slot(self):
        assert RecordId(1, 5) < RecordId(2, 0)
        assert RecordId(1, 5) < RecordId(1, 6)

    def test_bad_length_rejected(self):
        with pytest.raises(DatabaseError):
            RecordId.from_bytes(b"\x00" * 3)

    def test_hashable_and_usable_as_dict_key(self):
        mapping = {RecordId(1, 2): "a", RecordId(1, 3): "b"}
        assert mapping[RecordId(1, 2)] == "a"
