"""Tests for the catalog and the transaction machinery."""

import pytest

from repro.buffer import BufferPool
from repro.db import Catalog, Transaction, TransactionManager
from repro.db.transaction import TxnState
from repro.errors import DatabaseError, TransactionAborted, TransactionError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk


def make_pool(capacity=16):
    return BufferPool(SimulatedDisk(), LRUPolicy(), capacity)


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog(make_pool())
        catalog.register("customers", "heap", [4, 5, 6])
        kind, pages = catalog.lookup("customers")
        assert kind == "heap"
        assert pages == [4, 5, 6]

    def test_unknown_name_rejected(self):
        catalog = Catalog(make_pool())
        with pytest.raises(DatabaseError):
            catalog.lookup("missing")

    def test_survives_reopen_on_same_disk(self):
        disk = SimulatedDisk()
        pool = BufferPool(disk, LRUPolicy(), 16)
        catalog = Catalog(pool)
        catalog.register("t1", "heap", [10])
        catalog.register("t1_pk", "btree", [11])
        pool.flush_all()
        # Re-open: a fresh pool over the same disk image.
        reopened = Catalog(BufferPool(disk, LRUPolicy(), 16))
        assert reopened.lookup("t1") == ("heap", [10])
        assert reopened.lookup("t1_pk") == ("btree", [11])
        assert reopened.names() == ["t1", "t1_pk"]

    def test_reregister_replaces(self):
        catalog = Catalog(make_pool())
        catalog.register("t", "heap", [1])
        catalog.register("t", "heap", [1, 2])
        assert catalog.lookup("t")[1] == [1, 2]

    def test_name_with_space_rejected(self):
        catalog = Catalog(make_pool())
        with pytest.raises(DatabaseError):
            catalog.register("bad name", "heap", [1])

    def test_contains(self):
        catalog = Catalog(make_pool())
        catalog.register("x", "heap", [])
        assert "x" in catalog
        assert "y" not in catalog


class TestTransaction:
    def test_lifecycle(self):
        txn = Transaction(1, process_id=0)
        txn.touch(5)
        txn.commit()
        assert txn.state is TxnState.COMMITTED
        assert txn.pages_touched == [5]

    def test_use_after_commit_rejected(self):
        txn = Transaction(1, 0)
        txn.commit()
        with pytest.raises(TransactionError):
            txn.touch(1)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_abort(self):
        txn = Transaction(1, 0)
        txn.abort()
        assert txn.state is TxnState.ABORTED


class TestTransactionManager:
    def test_ids_are_unique_and_increasing(self):
        manager = TransactionManager()
        first = manager.begin()
        second = manager.begin()
        assert second.txn_id > first.txn_id

    def test_run_commits_body(self):
        manager = TransactionManager()
        touched = []
        txn = manager.run(lambda t: touched.append(t.txn_id))
        assert txn.state is TxnState.COMMITTED
        assert manager.committed == 1
        assert touched == [txn.txn_id]

    def test_injected_aborts_cause_retry(self):
        manager = TransactionManager(abort_probability=0.5, seed=1,
                                     max_retries=100)
        runs = []
        txn = manager.run(lambda t: runs.append(t.txn_id))
        assert txn.state is TxnState.COMMITTED
        # Every attempt (including aborted ones) executed the body: the
        # replayed accesses are the type-(2) correlated references.
        assert len(runs) == manager.aborted + 1

    def test_retry_budget_exhausted_raises(self):
        manager = TransactionManager(abort_probability=0.999, seed=2,
                                     max_retries=2)
        with pytest.raises(TransactionAborted):
            manager.run(lambda t: None)

    def test_body_raised_abort_also_retries(self):
        manager = TransactionManager(seed=3)
        attempts = []

        def body(txn):
            attempts.append(txn.txn_id)
            if len(attempts) == 1:
                raise TransactionAborted("first try fails")

        txn = manager.run(body)
        assert txn.state is TxnState.COMMITTED
        assert len(attempts) == 2
        assert manager.aborted == 1

    def test_invalid_parameters(self):
        with pytest.raises(TransactionError):
            TransactionManager(abort_probability=1.0)
        with pytest.raises(TransactionError):
            TransactionManager(max_retries=-1)
