"""TenantLedger: per-tenant fairness accounting and quota queries."""

import pytest

from repro.errors import ConfigurationError
from repro.service import TenantLedger


class TestConstruction:
    def test_rejects_non_positive_quotas(self):
        with pytest.raises(ConfigurationError):
            TenantLedger({"a": 0})
        with pytest.raises(ConfigurationError):
            TenantLedger({"a": -3})

    def test_no_quotas_means_unconstrained(self):
        ledger = TenantLedger()
        assert ledger.quota_of("anyone") is None
        assert not ledger.over_quota("anyone")


class TestRecording:
    def test_request_hit_miss_split(self):
        ledger = TenantLedger()
        ledger.record_request("a", hit=True)
        ledger.record_request("a", hit=False)
        ledger.record_request("a", hit=False)
        account = ledger.snapshot()["a"]
        assert account.requests == 3
        assert account.hits == 1
        assert account.misses == 2
        assert account.hit_ratio == pytest.approx(1 / 3)

    def test_hit_ratio_of_idle_tenant_is_zero(self):
        ledger = TenantLedger()
        ledger.ensure("idle")
        assert ledger.snapshot()["idle"].hit_ratio == 0.0

    def test_residency_tracks_admissions_minus_evictions(self):
        ledger = TenantLedger()
        for _ in range(5):
            ledger.record_admission("a")
        ledger.record_eviction("a")
        ledger.record_eviction("a", quota_enforced=True)
        account = ledger.snapshot()["a"]
        assert account.resident == 3
        assert account.peak_resident == 5
        assert account.evictions == 2
        assert account.quota_evictions == 1


class TestQuota:
    def test_over_quota_at_the_boundary(self):
        # "At or over quota pays" — the multi-pool idiom: admitting one
        # more page when resident == quota would exceed it.
        ledger = TenantLedger({"a": 2})
        assert not ledger.over_quota("a")
        ledger.record_admission("a")
        assert not ledger.over_quota("a")
        ledger.record_admission("a")
        assert ledger.over_quota("a")
        ledger.record_eviction("a")
        assert not ledger.over_quota("a")

    def test_quota_applies_per_tenant(self):
        ledger = TenantLedger({"a": 1})
        ledger.record_admission("a")
        ledger.record_admission("b")
        ledger.record_admission("b")
        assert ledger.over_quota("a")
        assert not ledger.over_quota("b")
        assert ledger.snapshot()["a"].quota == 1
        assert ledger.snapshot()["b"].quota is None


class TestSnapshot:
    def test_snapshot_is_a_copy(self):
        ledger = TenantLedger()
        ledger.record_admission("a")
        frozen = ledger.snapshot()
        ledger.record_admission("a")
        assert frozen["a"].resident == 1
        assert ledger.snapshot()["a"].resident == 2

    def test_tenants_sorted(self):
        ledger = TenantLedger()
        for tenant in ("c", "a", "b"):
            ledger.ensure(tenant)
        assert ledger.tenants() == ["a", "b", "c"]
