"""Serial equivalence: the served path changes no replacement decision."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.policies import LRUPolicy
from repro.service import (
    replay_offline,
    replay_served,
    served_equivalence,
)


def zipfian_stream(count: int, pages: int = 200, seed: int = 0):
    rng = random.Random(seed)
    return [min(int(pages ** rng.random()), pages - 1)
            for _ in range(count)]


class TestDeterministicTraces:
    def test_zipfian_trace_is_decision_identical(self):
        report = served_equivalence(zipfian_stream(4000), capacity=32,
                                    policy_factory=lambda: LRUKPolicy(k=2))
        assert report.identical, report.mismatches()

    def test_lru_policy_also_equivalent(self):
        report = served_equivalence(zipfian_stream(2000, seed=3),
                                    capacity=16,
                                    policy_factory=LRUPolicy)
        assert report.identical, report.mismatches()

    def test_stats_and_event_streams_compared(self):
        pages = [1, 2, 3, 1, 4, 5, 1, 2, 6]
        report = served_equivalence(pages, capacity=3,
                                    policy_factory=LRUPolicy)
        assert report.identical
        assert len(report.offline.accesses) == len(pages)
        assert report.served.stats is not None
        assert report.served.stats.evictions == len(
            report.served.evictions)

    def test_mismatches_describe_divergence(self):
        # Different traces on the two sides must be reported, not hidden.
        offline = replay_offline([1, 2, 3], capacity=2,
                                 policy=LRUPolicy())
        served = replay_served([1, 2, 4], capacity=2,
                               policy_factory=LRUPolicy)
        from repro.service import EquivalenceReport
        report = EquivalenceReport(offline=offline, served=served)
        assert not report.identical
        assert report.mismatches()


class TestPropertyEquivalence:
    @settings(max_examples=30, deadline=None)
    @given(pages=st.lists(st.integers(min_value=0, max_value=40),
                          min_size=1, max_size=300),
           capacity=st.integers(min_value=2, max_value=12),
           k=st.integers(min_value=1, max_value=3))
    def test_any_trace_any_capacity(self, pages, capacity, k):
        report = served_equivalence(pages, capacity,
                                    policy_factory=lambda: LRUKPolicy(k=k))
        assert report.identical, report.mismatches()
