"""Threaded stress: pin discipline and counter integrity under contention.

The satellite the service layer exists to make testable: many threads
hammering one shard must never lose a pin, never evict a pinned page,
and must leave the aggregate ``BufferStats`` exactly equal to the sum of
the per-session counters (no lost updates in the lock-protected paths).
"""

import random
import threading

from repro.policies import LRUPolicy
from repro.service import ShardedBufferManager


def hammer(manager, tenant, references, seed, hold_pages=(), errors=None):
    """One worker: random fetch/unpin traffic, optionally guarding pins.

    ``hold_pages`` are fetched once and held pinned for the whole run;
    the caller asserts they survived the storm.
    """
    session = manager.session(tenant)
    rng = random.Random(seed)
    try:
        for page in hold_pages:
            session.fetch(page)
        for _ in range(references):
            page = rng.randrange(100)
            session.fetch(page)
            session.unpin(page, dirty=rng.random() < 0.1)
        for page in hold_pages:
            assert page in manager.resident_pages(), (
                f"pinned page {page} was evicted")
            session.unpin(page)
    except BaseException as exc:  # noqa: BLE001 - surfaced by the test
        if errors is not None:
            errors.append(exc)
        raise
    return session


class TestSingleShardContention:
    THREADS = 8
    REFERENCES = 2000

    def run_storm(self, manager, hold_map=None):
        hold_map = hold_map or {}
        errors = []
        sessions = {}

        def work(index):
            sessions[index] = hammer(
                manager, f"t{index % 2}", self.REFERENCES,
                seed=index, hold_pages=hold_map.get(index, ()),
                errors=errors)

        threads = [threading.Thread(target=work, args=(index,))
                   for index in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        return sessions

    def test_no_lost_pins(self):
        manager = ShardedBufferManager(16, shards=1,
                                       policy_factory=LRUPolicy)
        self.run_storm(manager)
        pool = manager.shards[0].pool
        for page in pool.resident_pages:
            assert pool.pin_count(page) == 0, (
                f"page {page} still pinned after all unpins")

    def test_pinned_pages_never_evicted(self):
        # Threads 0 and 1 hold distinct pages pinned while six others
        # fault heavily through the same 16-frame shard.
        manager = ShardedBufferManager(16, shards=1,
                                       policy_factory=LRUPolicy)
        self.run_storm(manager, hold_map={0: (7,), 1: (13,)})
        # Survival while pinned is asserted inside hammer(); after the
        # final unpins the pages are fair game again, so here we only
        # check no residual pins anywhere.
        pool = manager.shards[0].pool
        for page in pool.resident_pages:
            assert pool.pin_count(page) == 0

    def test_stats_totals_equal_session_sums(self):
        manager = ShardedBufferManager(16, shards=1,
                                       policy_factory=LRUPolicy)
        sessions = self.run_storm(manager)
        stats = manager.stats()
        requests = sum(s.stats.requests for s in sessions.values())
        hits = sum(s.stats.hits for s in sessions.values())
        misses = sum(s.stats.misses for s in sessions.values())
        assert stats.hits + stats.misses == requests
        assert stats.hits == hits
        assert stats.misses == misses
        # The metrics plane agrees with both.
        snapshot = manager.registry.snapshot()
        assert snapshot["service.requests"] == requests
        assert snapshot["service.hits"] == hits

    def test_ledger_residency_matches_the_pools(self):
        manager = ShardedBufferManager(32, shards=2,
                                       policy_factory=LRUPolicy)
        self.run_storm(manager)
        accounts = manager.tenant_accounts()
        assert sum(a.resident for a in accounts.values()) == len(
            manager.resident_pages())

    def test_resident_set_never_exceeds_capacity(self):
        manager = ShardedBufferManager(16, shards=1,
                                       policy_factory=LRUPolicy)
        self.run_storm(manager)
        assert len(manager.resident_pages()) <= 16


class TestMultiShardContention:
    def test_storm_across_shards_with_quotas(self):
        manager = ShardedBufferManager(32, shards=4,
                                       quotas={"t0": 8},
                                       policy_factory=LRUPolicy)
        errors = []
        threads = [
            threading.Thread(target=hammer,
                             args=(manager, f"t{index % 2}", 1500, index),
                             kwargs={"errors": errors})
            for index in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors
        stats = manager.stats()
        assert stats.hits + stats.misses == 8 * 1500
        # Quota enforcement under contention still only charges t0.
        accounts = manager.tenant_accounts()
        assert accounts["t1"].quota_evictions == 0
