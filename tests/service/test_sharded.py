"""ShardedBufferManager: sharding, sessions, quotas, and metrics."""

import pytest

from repro.core import LRUKPolicy
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.policies import LRUPolicy
from repro.service import ShardedBufferManager


def manager_of(capacity=16, shards=2, **kwargs) -> ShardedBufferManager:
    return ShardedBufferManager(capacity, shards=shards, **kwargs)


class TestConstruction:
    def test_rejects_non_positive_shards(self):
        with pytest.raises(ConfigurationError):
            ShardedBufferManager(8, shards=0)

    def test_rejects_capacity_below_shard_count(self):
        with pytest.raises(ConfigurationError):
            ShardedBufferManager(3, shards=4)

    def test_capacity_split_sums_to_total(self):
        manager = manager_of(capacity=10, shards=3)
        sizes = [shard.pool.capacity for shard in manager.shards]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1  # as even as possible

    def test_each_shard_gets_a_fresh_policy(self):
        built = []

        def factory():
            policy = LRUPolicy()
            built.append(policy)
            return policy

        manager = manager_of(shards=3, policy_factory=factory)
        assert len(built) == 3
        assert len({id(p) for p in built}) == 3
        del manager

    def test_rejects_bad_tenant_quota(self):
        with pytest.raises(ConfigurationError):
            manager_of(quotas={"a": 0})


class TestSharding:
    def test_shard_of_is_stable_and_in_range(self):
        manager = manager_of(shards=4)
        for page in range(200):
            index = manager.shard_of(page)
            assert 0 <= index < 4
            assert manager.shard_of(page) == index

    def test_dense_page_ids_spread_across_shards(self):
        manager = manager_of(capacity=64, shards=4)
        hit_shards = {manager.shard_of(page) for page in range(64)}
        assert hit_shards == {0, 1, 2, 3}


class TestRequestPath:
    def test_miss_then_hit(self):
        manager = manager_of()
        with manager.session("a") as session:
            assert session.access(7) is False  # cold miss
            assert session.access(7) is True   # now resident
        stats = manager.stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_pin_discipline_via_session(self):
        manager = manager_of(capacity=2, shards=1)
        with manager.session("a") as session:
            with session.pinned(1):
                session.access(2)
                # Page 1 is pinned: filling the pool cannot evict it.
                session.access(3)
                assert 1 in manager.resident_pages()
            pool = manager.shards[0].pool
            assert pool.pin_count(1) == 0

    def test_session_stats_match_manager_stats(self):
        manager = manager_of(capacity=8, shards=2)
        with manager.session("a") as session:
            for page in [1, 2, 3, 1, 2, 3, 9]:
                session.access(page)
            assert session.stats.requests == 7
        stats = manager.stats()
        assert stats.hits == session.stats.hits
        assert stats.misses == session.stats.misses

    def test_dirty_unpin_writes_back_on_flush(self):
        manager = manager_of(capacity=4, shards=2)
        with manager.session("a") as session:
            session.fetch(5)
            session.unpin(5, dirty=True)
        assert manager.flush_all() == 1

    def test_session_ids_are_unique(self):
        manager = manager_of()
        first = manager.session("a")
        second = manager.session("b")
        assert first.session_id != second.session_id
        first.close()
        second.close()
        second.close()  # idempotent


class TestQuotaEnforcement:
    def test_over_quota_tenant_evicts_its_own_lru_page(self):
        manager = manager_of(capacity=4, shards=1, quotas={"greedy": 2},
                             policy_factory=LRUPolicy)
        greedy = manager.session("greedy")
        modest = manager.session("modest")
        modest.access(101)
        modest.access(102)
        greedy.access(1)
        greedy.access(2)   # greedy now at quota, shard now full
        greedy.access(3)   # must displace greedy's own LRU page (1)
        resident = manager.resident_pages()
        assert {101, 102} <= resident  # the modest tenant is untouched
        assert 1 not in resident
        accounts = manager.tenant_accounts()
        assert accounts["greedy"].quota_evictions == 1
        assert accounts["modest"].quota_evictions == 0

    def test_no_enforcement_while_the_shard_has_free_frames(self):
        manager = manager_of(capacity=8, shards=1, quotas={"a": 1})
        with manager.session("a") as session:
            for page in range(4):
                session.access(page)
        # Over quota but never against a full shard: no quota evictions,
        # and the tenant keeps all its pages.
        assert manager.tenant_accounts()["a"].quota_evictions == 0
        assert manager.resident_pages() == frozenset(range(4))

    def test_unconstrained_manager_never_quota_evicts(self):
        manager = manager_of(capacity=4, shards=1)
        with manager.session("a") as session:
            for page in range(20):
                session.access(page)
        assert manager.tenant_accounts()["a"].quota_evictions == 0

    def test_hit_by_another_tenant_keeps_first_touch_ownership(self):
        manager = manager_of(capacity=4, shards=1)
        owner = manager.session("owner")
        reader = manager.session("reader")
        owner.access(1)
        reader.access(1)  # hit; ownership must not transfer
        accounts = manager.tenant_accounts()
        assert accounts["owner"].resident == 1
        assert accounts["reader"].resident == 0


class TestMetricsSurface:
    def test_service_counters_accumulate(self):
        registry = MetricsRegistry()
        manager = manager_of(registry=registry)
        with manager.session("a") as session:
            session.access(1)
            session.access(1)
        snapshot = registry.snapshot()
        assert snapshot["service.requests"] == 2
        assert snapshot["service.hits"] == 1
        assert snapshot["service.misses"] == 1
        assert snapshot["service.tenant.a.requests"] == 2

    def test_latency_histogram_records_every_request(self):
        manager = manager_of()
        with manager.session("a") as session:
            for page in range(10):
                session.access(page)
        assert manager.registry.percentile("service.request_ms",
                                           0.5) is not None

    def test_shard_gauges_read_live_state(self):
        manager = manager_of(capacity=8, shards=2)
        with manager.session("a") as session:
            for page in range(6):
                session.access(page)
        snapshot = manager.registry.snapshot()
        resident = sum(snapshot[f"service.shard.{i}.resident"]
                       for i in range(2))
        assert resident == len(manager.resident_pages())

    def test_sessions_gauge_tracks_open_sessions(self):
        manager = manager_of()
        gauge = lambda: manager.registry.snapshot()["service.sessions"]
        assert gauge() == 0
        with manager.session("a"):
            assert gauge() == 1
        assert gauge() == 0


class TestDefaultPolicy:
    def test_default_policy_is_lruk2(self):
        manager = manager_of()
        for shard in manager.shards:
            policy = shard.pool.policy
            assert isinstance(policy, LRUKPolicy)
            assert policy.k == 2
