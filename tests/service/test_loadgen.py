"""Threaded load generation: totals, reports, and failure handling."""

import threading

import pytest

from repro.errors import ConfigurationError
from repro.service import ShardedBufferManager, run_load
from repro.workloads import ZipfianWorkload


def small_manager(**kwargs) -> ShardedBufferManager:
    kwargs.setdefault("capacity", 64)
    kwargs.setdefault("shards", 2)
    return ShardedBufferManager(kwargs.pop("capacity"), **kwargs)


def tenant_workloads(count=2):
    return {f"t{i}": ZipfianWorkload(n=200) for i in range(count)}


class TestValidation:
    def test_rejects_non_positive_sessions(self):
        with pytest.raises(ConfigurationError):
            run_load(small_manager(), tenant_workloads(), sessions=0)

    def test_rejects_non_positive_references(self):
        with pytest.raises(ConfigurationError):
            run_load(small_manager(), tenant_workloads(), references=0)

    def test_rejects_empty_tenant_map(self):
        with pytest.raises(ConfigurationError):
            run_load(small_manager(), {})


class TestAccounting:
    def test_totals_and_round_robin_assignment(self):
        report = run_load(small_manager(), tenant_workloads(2),
                          sessions=4, references=500)
        assert len(report.sessions) == 4
        assert report.total_requests == 4 * 500
        assert report.total_hits == sum(r.stats.hits
                                        for r in report.sessions)
        # 4 sessions over 2 tenants round-robin: 2 sessions each.
        per_tenant = report.per_tenant
        assert per_tenant["t0"].requests == 1000
        assert per_tenant["t1"].requests == 1000
        assert 0.0 < report.hit_ratio < 1.0

    def test_ledger_agrees_with_session_sums(self):
        report = run_load(small_manager(), tenant_workloads(2),
                          sessions=4, references=400)
        by_tenant_sessions = {}
        for result in report.sessions:
            account = by_tenant_sessions.setdefault(result.tenant,
                                                    [0, 0])
            account[0] += result.stats.requests
            account[1] += result.stats.hits
        for tenant, (requests, hits) in by_tenant_sessions.items():
            assert report.per_tenant[tenant].requests == requests
            assert report.per_tenant[tenant].hits == hits

    def test_latency_quantiles_present(self):
        report = run_load(small_manager(), tenant_workloads(1),
                          sessions=2, references=300)
        assert set(report.latency_ms[""]) == {"p50", "p99", "p999"}
        assert set(report.latency_ms["t0"]) == {"p50", "p99", "p999"}
        assert report.latency_ms[""]["p50"] >= 0.0

    def test_render_mentions_every_surface(self):
        report = run_load(small_manager(quotas={"t0": 8}),
                          tenant_workloads(2), sessions=2,
                          references=300)
        text = report.render()
        assert "hit ratio" in text
        assert "p50" in text and "p99" in text
        assert "tenant t0" in text and "tenant t1" in text
        assert "quota 8" in text
        assert "throughput" in text


class TestFailurePropagation:
    def test_worker_exception_reraised_and_no_threads_leaked(self):
        manager = small_manager()
        boom = RuntimeError("injected fault")
        original = manager.fetch
        calls = []

        def failing_fetch(page_id, tenant, **kwargs):
            calls.append(page_id)
            if len(calls) > 5:
                raise boom
            return original(page_id, tenant, **kwargs)

        manager.fetch = failing_fetch
        before = threading.active_count()
        with pytest.raises(RuntimeError, match="injected fault"):
            run_load(manager, tenant_workloads(1), sessions=3,
                     references=200)
        # Every worker was joined before the re-raise; the broken
        # barrier in sibling threads must not mask the root cause.
        assert threading.active_count() == before

    def test_sessions_closed_even_on_failure(self):
        manager = small_manager()

        def always_fail(page_id, tenant, **kwargs):
            raise ValueError("nope")

        manager.fetch = always_fail
        with pytest.raises(ValueError):
            run_load(manager, tenant_workloads(1), sessions=2,
                     references=10)
        assert manager.registry.snapshot()["service.sessions"] == 0
