"""Tests for FIFO and MRU."""

import pytest

from repro.policies import FIFOPolicy, MRUPolicy
from repro.errors import NoEvictableFrameError

from ..conftest import drive, eviction_order


class TestFIFO:
    def test_evicts_in_admission_order(self):
        assert eviction_order(FIFOPolicy(), [1, 2, 3, 4, 5],
                              capacity=3) == [1, 2]

    def test_hits_do_not_refresh(self):
        # Unlike LRU, re-referencing 1 does not save it.
        assert eviction_order(FIFOPolicy(), [1, 2, 3, 1, 4],
                              capacity=3) == [1]

    def test_readmission_goes_to_back_of_queue(self):
        # 1 evicted, re-admitted, then must outlive 2 and 3.
        evictions = eviction_order(FIFOPolicy(), [1, 2, 3, 4, 1, 5, 6],
                                   capacity=3)
        assert evictions == [1, 2, 3, 4]

    def test_exclusions(self):
        policy = FIFOPolicy()
        drive(policy, [1, 2, 3], capacity=3)
        assert policy.choose_victim(4, exclude=frozenset({1})) == 2
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(4, exclude=frozenset({1, 2, 3}))


class TestMRU:
    def test_evicts_most_recently_used(self):
        assert eviction_order(MRUPolicy(), [1, 2, 3, 4], capacity=3) == [3]

    def test_hit_makes_page_the_victim(self):
        assert eviction_order(MRUPolicy(), [1, 2, 3, 1, 4],
                              capacity=3) == [1]

    def test_mru_survives_cyclic_scan_where_lru_starves(self):
        # On a pure cyclic scan MRU retains a stable subset and hits.
        trace = [0, 1, 2, 3] * 10
        simulator = drive(MRUPolicy(), trace, capacity=3)
        assert simulator.counter.hits > 0

    def test_exclusions(self):
        policy = MRUPolicy()
        drive(policy, [1, 2, 3], capacity=3)
        assert policy.choose_victim(4, exclude=frozenset({3})) == 2

    def test_reset(self):
        policy = MRUPolicy()
        drive(policy, [1, 2], capacity=2)
        policy.reset()
        assert len(policy) == 0
