"""Tests for the policy registry."""

import pytest

from repro.core import LRUKPolicy
from repro.errors import ConfigurationError
from repro.policies import available_policies, make_policy
from repro.policies.base import register_policy_factory


class TestRegistry:
    def test_all_expected_names_registered(self):
        names = set(available_policies())
        expected = {"lru", "fifo", "mru", "random", "clock", "gclock",
                    "lfu", "lfu-aged", "lrd-v1", "lrd-v2", "working-set",
                    "a0", "opt", "2q", "arc", "lru-k", "lru-2", "lru-3"}
        assert expected <= names

    def test_make_policy_constructs(self):
        policy = make_policy("lru")
        assert type(policy).__name__ == "LRUPolicy"

    def test_make_policy_passes_kwargs(self):
        policy = make_policy("lru-k", k=3, correlated_reference_period=7)
        assert isinstance(policy, LRUKPolicy)
        assert policy.k == 3
        assert policy.crp == 7

    def test_lru2_and_lru3_shorthands(self):
        assert make_policy("lru-2").k == 2
        assert make_policy("lru-3").k == 3

    def test_unknown_name_raises_with_suggestions(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_policy("lru-9000")
        assert "lru" in str(excinfo.value)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError):
            register_policy_factory("lru", lambda: None)

    def test_capacity_policies_need_capacity(self):
        with pytest.raises(TypeError):
            make_policy("2q")
        policy = make_policy("2q", capacity=16)
        assert policy.capacity == 16
