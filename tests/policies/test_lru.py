"""Tests for classical LRU (the paper's LRU-1)."""

import pytest

from repro.errors import NoEvictableFrameError, PolicyError
from repro.policies import LRUPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, eviction_order


class TestLRUSemantics:
    def test_evicts_least_recently_used(self):
        assert eviction_order(LRUPolicy(), [1, 2, 3, 4], capacity=3) == [1]

    def test_hit_refreshes_recency(self):
        # 1 is touched again, so 2 becomes the victim.
        assert eviction_order(LRUPolicy(), [1, 2, 3, 1, 4], capacity=3) == [2]

    def test_classic_sequential_flooding(self):
        # A cyclic scan one page larger than the buffer never hits — the
        # canonical LRU pathology.
        trace = [0, 1, 2, 3] * 5
        simulator = drive(LRUPolicy(), trace, capacity=3)
        assert simulator.counter.hits == 0

    def test_recency_order_exposed(self):
        policy = LRUPolicy()
        drive(policy, [1, 2, 3, 1], capacity=3)
        assert policy.recency_order() == [2, 3, 1]

    def test_exclusion_skips_pinned_page(self):
        policy = LRUPolicy()
        drive(policy, [1, 2, 3], capacity=3)
        assert policy.choose_victim(4, exclude=frozenset({1})) == 2

    def test_all_excluded_raises(self):
        policy = LRUPolicy()
        drive(policy, [1, 2], capacity=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({1, 2}))

    def test_empty_raises(self):
        with pytest.raises(NoEvictableFrameError):
            LRUPolicy().choose_victim(1)


class TestProtocolErrors:
    def test_hit_on_nonresident_rejected(self):
        with pytest.raises(PolicyError):
            LRUPolicy().on_hit(1, 1)

    def test_double_admit_rejected(self):
        policy = LRUPolicy()
        policy.on_admit(1, 1)
        with pytest.raises(PolicyError):
            policy.on_admit(1, 2)

    def test_evict_nonresident_rejected(self):
        with pytest.raises(PolicyError):
            LRUPolicy().on_evict(1, 1)

    def test_reset_empties_policy(self):
        policy = LRUPolicy()
        drive(policy, [1, 2, 3], capacity=2)
        policy.reset()
        assert len(policy) == 0
        assert policy.recency_order() == []


class TestHitAccounting:
    def test_hit_ratio_counts(self):
        simulator = drive(LRUPolicy(), [1, 2, 1, 2, 3], capacity=2)
        assert simulator.counter.hits == 2
        assert simulator.counter.misses == 3
        assert simulator.hit_ratio == pytest.approx(2 / 5)

    def test_start_measurement_resets_window(self):
        simulator = CacheSimulator(LRUPolicy(), capacity=2)
        simulator.access(1)
        simulator.access(1)
        simulator.start_measurement()
        simulator.access(1)
        assert simulator.counter.total == 1
        assert simulator.hit_ratio == 1.0
        assert simulator.warmup_counter.total == 2
