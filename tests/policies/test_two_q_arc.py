"""Tests for the lineage policies 2Q and ARC."""

import pytest

from repro.errors import ConfigurationError
from repro.policies import ARCPolicy, LRUPolicy, TwoQPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, hit_ratio


class TestTwoQ:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            TwoQPolicy(capacity=0)
        with pytest.raises(ConfigurationError):
            TwoQPolicy(capacity=10, kin_fraction=0.0)
        with pytest.raises(ConfigurationError):
            TwoQPolicy(capacity=10, kout_fraction=0.0)

    def test_once_referenced_pages_stay_out_of_hot_queue(self):
        policy = TwoQPolicy(capacity=8)
        drive(policy, [1, 2, 3], capacity=8)
        assert policy.hot_pages == frozenset()

    def test_ghost_hit_promotes_to_hot_queue(self):
        policy = TwoQPolicy(capacity=4, kin_fraction=0.25)
        simulator = CacheSimulator(policy, capacity=4)
        # Fill A1in (size 1) and push 1 out into A1out, then re-reference.
        for page in [1, 2, 3, 4, 5]:
            simulator.access(page)
        assert 1 in policy.ghost_pages or not simulator.is_resident(1)
        if not simulator.is_resident(1):
            simulator.access(1)
            assert 1 in policy.hot_pages

    def test_a1in_hit_does_not_promote(self):
        policy = TwoQPolicy(capacity=8, kin_fraction=0.5)
        simulator = CacheSimulator(policy, capacity=8)
        simulator.access(1)
        simulator.access(1)  # burst hit inside A1in
        assert 1 not in policy.hot_pages

    def test_scan_resistant_versus_lru(self):
        """2Q's selling point: one sequential scan doesn't flush hot pages."""
        from repro.stats import SeededRng
        rng = SeededRng(3)
        hot = [rng.randrange(8) for _ in range(3000)]
        scan = list(range(100, 400))
        trace = hot[:1500] + scan + hot[1500:]
        two_q = hit_ratio(TwoQPolicy(capacity=16), trace, 16, warmup=500)
        lru = hit_ratio(LRUPolicy(), trace, 16, warmup=500)
        assert two_q >= lru

    def test_ghost_queue_is_bounded(self):
        policy = TwoQPolicy(capacity=4, kout_fraction=0.5)
        simulator = CacheSimulator(policy, capacity=4)
        for page in range(200):
            simulator.access(page)
        assert len(policy.ghost_pages) <= policy.kout


class TestARC:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            ARCPolicy(capacity=0)

    def test_hit_moves_page_to_frequency_list(self):
        policy = ARCPolicy(capacity=4)
        simulator = CacheSimulator(policy, capacity=4)
        simulator.access(1)
        assert 1 in policy.recency_pages
        simulator.access(1)
        assert 1 in policy.frequency_pages

    def test_ghost_hit_in_b1_grows_p(self):
        # A ghost can only persist while |T1|+|B1| < c, i.e. after a
        # promotion into T2 shrank T1 (canonical ARC trims B1 otherwise).
        policy = ARCPolicy(capacity=2)
        simulator = CacheSimulator(policy, capacity=2)
        for page in [1, 1, 2, 3]:  # 1 promoted to T2; 2 evicted into B1
            simulator.access(page)
        assert 2 in policy._b1
        before = policy.target_t1
        simulator.access(2)        # B1 ghost hit
        assert policy.target_t1 > before

    def test_ghost_hit_admits_into_t2(self):
        policy = ARCPolicy(capacity=2)
        simulator = CacheSimulator(policy, capacity=2)
        for page in [1, 1, 2, 3, 2]:
            simulator.access(page)
        assert 2 in policy.frequency_pages

    def test_ghost_lists_bounded(self):
        policy = ARCPolicy(capacity=8)
        simulator = CacheSimulator(policy, capacity=8)
        for page in range(500):
            simulator.access(page % 60)
        assert len(policy._b1) <= policy.capacity
        assert len(policy._b1) + len(policy._b2) <= 2 * policy.capacity

    def test_residency_is_t1_union_t2(self):
        policy = ARCPolicy(capacity=6)
        simulator = CacheSimulator(policy, capacity=6)
        for page in [1, 2, 3, 1, 4, 5, 2, 6, 7, 1, 8]:
            simulator.access(page)
            assert (policy.recency_pages | policy.frequency_pages
                    == simulator.resident_pages)

    def test_scan_resistance_versus_lru(self):
        from repro.stats import SeededRng
        rng = SeededRng(4)
        hot = [rng.randrange(8) for _ in range(3000)]
        scan = list(range(100, 400))
        trace = hot[:1500] + scan + hot[1500:]
        arc = hit_ratio(ARCPolicy(capacity=16), trace, 16, warmup=500)
        lru = hit_ratio(LRUPolicy(), trace, 16, warmup=500)
        assert arc >= lru

    def test_adaptation_p_stays_in_range(self):
        policy = ARCPolicy(capacity=5)
        simulator = CacheSimulator(policy, capacity=5)
        from repro.stats import SeededRng
        rng = SeededRng(8)
        for _ in range(2000):
            simulator.access(rng.randrange(25))
            assert 0.0 <= policy.target_t1 <= policy.capacity
