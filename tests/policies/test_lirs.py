"""Tests for LIRS."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError, NoEvictableFrameError
from repro.policies import LIRSPolicy, LRUPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, hit_ratio


class TestConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LIRSPolicy(capacity=0)
        with pytest.raises(ConfigurationError):
            LIRSPolicy(capacity=10, hir_fraction=0.0)
        with pytest.raises(ConfigurationError):
            LIRSPolicy(capacity=10, ghost_factor=0.0)

    def test_set_sizes(self):
        policy = LIRSPolicy(capacity=100, hir_fraction=0.05)
        assert policy.hir_size == 5
        assert policy.lir_size == 95


class TestTransitions:
    def test_cold_start_fills_lir_first(self):
        policy = LIRSPolicy(capacity=6, hir_fraction=0.34)  # lir_size 4
        drive(policy, [1, 2, 3, 4], capacity=6)
        assert policy.lir_pages == {1, 2, 3, 4}
        assert not policy.resident_hir_pages

    def test_overflow_becomes_hir(self):
        policy = LIRSPolicy(capacity=6, hir_fraction=0.34)
        drive(policy, [1, 2, 3, 4, 5], capacity=6)
        assert 5 in policy.resident_hir_pages

    def test_victim_is_hir_front(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5)  # lir 2, hir 2
        simulator = drive(policy, [1, 2, 3, 4], capacity=4)
        assert policy.resident_hir_pages == {3, 4}
        outcome = simulator.access(5)
        assert outcome.evicted == 3        # FIFO front of Q

    def test_evicted_hir_leaves_ghost(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5)
        simulator = drive(policy, [1, 2, 3, 4], capacity=4)
        simulator.access(5)                # evicts 3 -> ghost
        assert 3 in policy.ghost_pages

    def test_ghost_hit_promotes_to_lir(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5)
        simulator = drive(policy, [1, 2, 3, 4], capacity=4)
        simulator.access(5)                # 3 becomes a ghost
        simulator.access(3)                # ghost hit -> LIR
        assert 3 in policy.lir_pages

    def test_hir_hit_in_stack_promotes(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5)
        simulator = drive(policy, [1, 2, 3], capacity=4)
        assert 3 in policy.resident_hir_pages
        simulator.access(3)                # still in S -> promote
        assert 3 in policy.lir_pages
        # A LIR page was demoted to keep the set size.
        assert len(policy.lir_pages) == policy.lir_size

    def test_lir_hit_keeps_state(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5)
        simulator = drive(policy, [1, 2], capacity=4)
        simulator.access(1)
        assert 1 in policy.lir_pages

    def test_ghosts_are_bounded(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5, ghost_factor=1.0)
        simulator = CacheSimulator(policy, 4)
        for page in range(200):
            simulator.access(page)
        assert len(policy.ghost_pages) <= policy.ghost_limit

    def test_exclusions_fall_back_to_lir(self):
        policy = LIRSPolicy(capacity=4, hir_fraction=0.5)
        drive(policy, [1, 2, 3, 4], capacity=4)
        victim = policy.choose_victim(5, exclude=frozenset({3, 4}))
        assert victim in (1, 2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(5, exclude=frozenset({1, 2, 3, 4}))


class TestBehaviour:
    def test_scan_resistance_beats_lru(self):
        from repro.stats import SeededRng
        rng = SeededRng(12)
        hot = [rng.randrange(8) for _ in range(4000)]
        scan = list(range(100, 500))
        trace = hot[:2000] + scan + hot[2000:]
        lirs = hit_ratio(LIRSPolicy(capacity=16), trace, 16, warmup=500)
        lru = hit_ratio(LRUPolicy(), trace, 16, warmup=500)
        assert lirs > lru

    def test_discriminates_two_pool(self, two_pool_trace):
        lirs = hit_ratio(LIRSPolicy(capacity=10), two_pool_trace, 10,
                         warmup=500)
        lru = hit_ratio(LRUPolicy(), two_pool_trace, 10, warmup=500)
        assert lirs > lru

    @given(trace=st.lists(st.integers(min_value=0, max_value=20),
                          min_size=1, max_size=200),
           capacity=st.integers(min_value=2, max_value=8))
    @settings(max_examples=75, deadline=None)
    def test_state_partition_invariant(self, trace, capacity):
        """Residents are exactly LIR + resident-HIR, disjointly."""
        policy = LIRSPolicy(capacity=capacity, hir_fraction=0.4)
        simulator = CacheSimulator(policy, capacity)
        for page in trace:
            simulator.access(page)
            lir = policy.lir_pages
            hir = policy.resident_hir_pages
            assert lir.isdisjoint(hir)
            assert lir | hir == simulator.resident_pages
            assert policy.ghost_pages.isdisjoint(simulator.resident_pages)
            assert len(lir) <= policy.lir_size
