"""Tests for CLOCK and GCLOCK."""

import pytest

from repro.errors import ConfigurationError, NoEvictableFrameError
from repro.policies import ClockPolicy, GClockPolicy, LRUPolicy

from ..conftest import drive, eviction_order, hit_ratio


class TestClock:
    def test_second_chance_basic(self):
        # 1,2,3 admitted with bits set; miss on 4 sweeps: clears 1,2,3
        # then evicts 1 on the second pass.
        assert eviction_order(ClockPolicy(), [1, 2, 3, 4], capacity=3) == [1]

    def test_recently_hit_page_survives(self):
        # After [1,2,3,4] the sweep has cleared 2 and 3 and evicted 1.
        # Re-hitting 2 re-arms its bit, so the next miss takes 3.
        assert eviction_order(ClockPolicy(), [1, 2, 3, 4, 2, 5],
                              capacity=3) == [1, 3]

    def test_approximates_lru_on_skewed_trace(self, two_pool_trace):
        clock = hit_ratio(ClockPolicy(), two_pool_trace, capacity=20,
                          warmup=500)
        lru = hit_ratio(LRUPolicy(), two_pool_trace, capacity=20, warmup=500)
        assert clock == pytest.approx(lru, abs=0.08)

    def test_exclusions(self):
        policy = ClockPolicy()
        drive(policy, [1, 2, 3], capacity=3)
        victim = policy.choose_victim(4, exclude=frozenset({1}))
        assert victim in (2, 3)

    def test_all_excluded_raises(self):
        policy = ClockPolicy()
        drive(policy, [1, 2], capacity=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({1, 2}))

    def test_tombstone_compaction_preserves_correctness(self):
        policy = ClockPolicy()
        trace = list(range(50)) * 3
        simulator = drive(policy, trace, capacity=8)
        assert len(simulator.resident_pages) == 8

    def test_reset(self):
        policy = ClockPolicy()
        drive(policy, [1, 2], capacity=2)
        policy.reset()
        assert len(policy) == 0


class TestGClock:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            GClockPolicy(initial_count=-1)
        with pytest.raises(ConfigurationError):
            GClockPolicy(hit_increment=0)
        with pytest.raises(ConfigurationError):
            GClockPolicy(max_count=0)

    def test_frequently_hit_page_survives_longer(self):
        policy = GClockPolicy(initial_count=1, hit_increment=1)
        # 1 hit three times (count 4); 2 and 3 admitted once (count 1).
        trace = [1, 2, 3, 1, 1, 1, 4]
        evictions = eviction_order(policy, trace, capacity=3)
        assert evictions == [2]

    def test_counter_saturates_at_max(self):
        policy = GClockPolicy(initial_count=1, hit_increment=5, max_count=6)
        drive(policy, [1, 1, 1, 1], capacity=2)
        assert policy._count[1] == 6

    def test_sweep_eventually_finds_victim(self):
        policy = GClockPolicy(initial_count=3, max_count=3)
        simulator = drive(policy, list(range(10)), capacity=4)
        assert len(simulator.resident_pages) == 4

    def test_discriminates_on_two_pool_trace(self, two_pool_trace):
        # GCLOCK's counters give popular pages extra lives: it must beat
        # plain CLOCK on the skewed trace.
        gclock = hit_ratio(GClockPolicy(initial_count=1, hit_increment=2),
                           two_pool_trace, capacity=10, warmup=500)
        clock = hit_ratio(ClockPolicy(), two_pool_trace, capacity=10,
                          warmup=500)
        assert gclock >= clock - 0.02
