"""Tests for LRD (V1/V2), Working-Set, and Random policies."""

import pytest

from repro.errors import ConfigurationError, NoEvictableFrameError
from repro.policies import (
    LRDV1Policy,
    LRDV2Policy,
    RandomPolicy,
    WorkingSetPolicy,
)
from repro.sim import CacheSimulator

from ..conftest import drive, eviction_order


class TestLRDV1:
    def test_evicts_lowest_density(self):
        policy = LRDV1Policy()
        simulator = CacheSimulator(policy, capacity=3)
        # Page 1: 3 refs; page 2: 1 ref; page 3: 1 ref (younger than 2).
        for page in [1, 2, 1, 3, 1]:
            simulator.access(page)
        # Densities at t=6: p1=3/5... wait ages: p1 age 6-1+1=6 -> 0.5;
        # p2 age 5 -> 0.2; p3 age 3 -> 0.33. Victim: p2.
        assert policy.choose_victim(6) == 2

    def test_density_resets_after_eviction(self):
        policy = LRDV1Policy()
        simulator = CacheSimulator(policy, capacity=2)
        for page in [1, 1, 1, 2, 3]:   # 2 evicted (density 1/4 < ...)
            simulator.access(page)
        assert not simulator.is_resident(2)
        assert 2 not in policy._count  # V1 forgets on eviction

    def test_exclusions(self):
        policy = LRDV1Policy()
        drive(policy, [1, 1, 2, 3], capacity=3)
        victim = policy.choose_victim(5, exclude=frozenset({2, 3}))
        assert victim == 1

    def test_all_excluded_raises(self):
        policy = LRDV1Policy()
        drive(policy, [1, 2], capacity=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({1, 2}))


class TestLRDV2:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            LRDV2Policy(aging_interval=0)
        with pytest.raises(ConfigurationError):
            LRDV2Policy(decay=1.0)
        with pytest.raises(ConfigurationError):
            LRDV2Policy(decay=0.0)

    def test_decay_erodes_ancient_popularity(self):
        policy = LRDV2Policy(aging_interval=10, decay=0.5)
        simulator = CacheSimulator(policy, capacity=4)
        for _ in range(8):
            simulator.access(1)
        count_before = policy._count[1]
        for t in range(100, 104):
            simulator.access(t)
        assert policy._count[1] < count_before

    def test_matches_v1_before_first_aging(self):
        trace = [1, 1, 2, 3, 2, 4]
        v1 = eviction_order(LRDV1Policy(), trace, capacity=3)
        v2 = eviction_order(LRDV2Policy(aging_interval=10 ** 6),
                            trace, capacity=3)
        assert v1 == v2


class TestWorkingSet:
    def test_rejects_bad_window(self):
        with pytest.raises(ConfigurationError):
            WorkingSetPolicy(window=0)

    def test_out_of_window_page_evicted_first(self):
        policy = WorkingSetPolicy(window=3)
        simulator = CacheSimulator(policy, capacity=3)
        for page in [1, 2, 3, 2, 3, 2]:   # 1 last seen at t=1
            simulator.access(page)
        assert not policy.in_working_set(1, simulator.now)
        assert policy.choose_victim(7) == 1

    def test_degrades_to_lru_when_all_in_window(self):
        policy = WorkingSetPolicy(window=1000)
        assert eviction_order(policy, [1, 2, 3, 1, 4], capacity=3) == [2]

    def test_working_set_size(self):
        policy = WorkingSetPolicy(window=2)
        simulator = CacheSimulator(policy, capacity=4)
        for page in [1, 2, 3]:
            simulator.access(page)
        assert policy.working_set_size(simulator.now) == 2  # pages 2, 3


class TestRandom:
    def test_deterministic_for_seed(self):
        trace = [1, 2, 3, 4, 5, 1, 6, 2, 7]
        first = eviction_order(RandomPolicy(seed=9), trace, capacity=3)
        second = eviction_order(RandomPolicy(seed=9), trace, capacity=3)
        assert first == second

    def test_different_seeds_can_differ(self):
        trace = list(range(30)) * 2
        runs = {tuple(eviction_order(RandomPolicy(seed=s), trace, capacity=5))
                for s in range(6)}
        assert len(runs) > 1

    def test_victim_is_always_resident(self):
        policy = RandomPolicy(seed=3)
        simulator = CacheSimulator(policy, capacity=4)
        for page in range(40):
            outcome = simulator.access(page % 11)
            if outcome.evicted is not None:
                assert outcome.evicted != outcome.reference.page
        assert len(simulator.resident_pages) <= 4

    def test_exclusions(self):
        policy = RandomPolicy(seed=0)
        drive(policy, [1, 2, 3], capacity=3)
        for _ in range(10):
            assert policy.choose_victim(4, exclude=frozenset({1, 2})) == 3

    def test_all_excluded_raises(self):
        policy = RandomPolicy(seed=0)
        drive(policy, [1], capacity=1)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(2, exclude=frozenset({1}))

    def test_swap_remove_bookkeeping(self):
        policy = RandomPolicy(seed=5)
        simulator = CacheSimulator(policy, capacity=3)
        for page in [1, 2, 3, 4, 5, 2, 6, 7]:
            simulator.access(page)
        assert set(policy._pages) == set(simulator.resident_pages)
        assert all(policy._pages[i] == p
                   for p, i in policy._slot_of.items())
