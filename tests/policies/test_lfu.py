"""Tests for LFU and aged LFU."""

import pytest

from repro.errors import ConfigurationError, NoEvictableFrameError
from repro.policies import AgedLFUPolicy, LFUPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, eviction_order


class TestLFU:
    def test_evicts_least_frequent(self):
        # 1 and 2 referenced twice, 3 once -> 3 is the victim.
        assert eviction_order(LFUPolicy(), [1, 2, 1, 2, 3, 4],
                              capacity=3) == [3]

    def test_ties_break_by_recency(self):
        # All counts equal: evict the least recently touched (1).
        assert eviction_order(LFUPolicy(), [1, 2, 3, 4], capacity=3) == [1]

    def test_never_forgets_counts_across_eviction(self):
        # Page 1 accumulates count 3, gets evicted by a parade, and on
        # return immediately outranks count-1 pages: the paper's
        # "never forgets" property.
        policy = LFUPolicy()
        simulator = CacheSimulator(policy, capacity=2)
        # 1 reaches count 2, then is evicted by count-3 pages 2 and 3.
        for page in [1, 1, 2, 2, 2, 3, 3, 3]:
            simulator.access(page)
        assert not simulator.is_resident(1)
        assert policy.reference_count(1) == 2   # remembered while absent
        simulator.access(1)                     # count rises to 3
        assert policy.reference_count(1) == 3
        assert simulator.is_resident(1)

    def test_paper_criticism_stale_hot_page_sticks(self):
        # A formerly-hot page hogs a slot long after it went cold — the
        # exact LFU drawback Section 4.3 describes.
        policy = LFUPolicy()
        simulator = CacheSimulator(policy, capacity=2)
        for _ in range(50):
            simulator.access(1)            # ancient popularity
        for page in range(100, 120):       # new era: 1 never referenced
            simulator.access(page)
        assert simulator.is_resident(1)    # still squatting

    def test_exclusions(self):
        policy = LFUPolicy()
        drive(policy, [1, 1, 2, 3], capacity=3)
        assert policy.choose_victim(4, exclude=frozenset({2})) == 3

    def test_all_excluded_raises(self):
        policy = LFUPolicy()
        drive(policy, [1, 2], capacity=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({1, 2}))

    def test_choose_victim_is_repeatable(self):
        policy = LFUPolicy()
        drive(policy, [1, 1, 2, 3], capacity=3)
        assert policy.choose_victim(5) == policy.choose_victim(5)

    def test_reset_clears_counts(self):
        policy = LFUPolicy()
        drive(policy, [1, 1, 1], capacity=2)
        policy.reset()
        assert policy.reference_count(1) == 0


class TestAgedLFU:
    def test_rejects_bad_period(self):
        with pytest.raises(ConfigurationError):
            AgedLFUPolicy(aging_period=0)

    def test_aging_halves_counts(self):
        policy = AgedLFUPolicy(aging_period=10)
        simulator = CacheSimulator(policy, capacity=4)
        for _ in range(8):
            simulator.access(1)            # count 8 by t=8
        for t in range(100, 104):
            simulator.access(t)            # crosses the aging boundary
        assert policy.reference_count(1) < 8

    def test_aged_lfu_recovers_from_stale_hot_page(self):
        # With aging, the formerly-hot page eventually loses its slot —
        # the behaviour plain LFU cannot produce (contrast test above).
        policy = AgedLFUPolicy(aging_period=20)
        simulator = CacheSimulator(policy, capacity=2)
        for _ in range(50):
            simulator.access(1)
        for page in range(100, 300):
            simulator.access(page)
        assert not simulator.is_resident(1)

    def test_aged_matches_plain_lfu_before_first_aging(self):
        trace = [1, 2, 1, 3, 2, 4, 1]
        plain = eviction_order(LFUPolicy(), trace, capacity=3)
        aged = eviction_order(AgedLFUPolicy(aging_period=10 ** 6),
                              trace, capacity=3)
        assert plain == aged
