"""Tests for the DBA-tuned multi-pool baseline."""

import pytest

from repro.errors import ConfigurationError, NoEvictableFrameError, PolicyError
from repro.policies import MultiPoolPolicy
from repro.sim import CacheSimulator


def two_domains(hot_quota: int, cold_quota: int) -> MultiPoolPolicy:
    return MultiPoolPolicy(domain_of=lambda page: 1 if page < 100 else 2,
                           quotas={1: hot_quota, 2: cold_quota})


class TestConstruction:
    def test_rejects_empty_quotas(self):
        with pytest.raises(ConfigurationError):
            MultiPoolPolicy(domain_of=lambda p: 1, quotas={})

    def test_rejects_negative_quotas(self):
        with pytest.raises(ConfigurationError):
            MultiPoolPolicy(domain_of=lambda p: 1, quotas={1: -1})

    def test_unknown_domain_rejected_at_use(self):
        policy = MultiPoolPolicy(domain_of=lambda p: 99, quotas={1: 4})
        with pytest.raises(PolicyError):
            policy.on_admit(1, 1)


class TestDomainSeparation:
    def test_cold_pages_cannot_displace_hot_pages(self):
        # Hot quota 3, cold quota 1; the cold parade must churn its own
        # single slot and leave the hot pages alone — Reiter's Domain
        # Separation behaviour.
        policy = two_domains(hot_quota=3, cold_quota=1)
        simulator = CacheSimulator(policy, capacity=4)
        for page in [0, 1, 2]:            # hot pool fills its quota
            simulator.access(page)
        for page in range(100, 130):      # cold parade
            simulator.access(page)
        assert {0, 1, 2} <= simulator.resident_pages

    def test_home_domain_pays_for_its_own_growth(self):
        policy = two_domains(hot_quota=2, cold_quota=2)
        simulator = CacheSimulator(policy, capacity=4)
        for page in [0, 1, 100, 101]:
            simulator.access(page)
        outcome = simulator.access(2)     # hot domain over quota
        assert outcome.evicted == 0       # hot domain's own LRU

    def test_over_quota_domain_charged_first(self):
        policy = two_domains(hot_quota=2, cold_quota=1)
        simulator = CacheSimulator(policy, capacity=3)
        for page in [100, 101, 0]:        # cold is over quota (2 > 1)
            simulator.access(page)
        outcome = simulator.access(1)     # hot newcomer, hot under quota
        assert outcome.evicted == 100     # most over-quota domain pays

    def test_per_domain_lru_order(self):
        policy = two_domains(hot_quota=2, cold_quota=2)
        simulator = CacheSimulator(policy, capacity=4)
        for page in [0, 1, 100, 101, 0]:  # 0 refreshed
            simulator.access(page)
        outcome = simulator.access(2)
        assert outcome.evicted == 1       # LRU within the hot domain

    def test_occupancy_tracking(self):
        policy = two_domains(hot_quota=2, cold_quota=2)
        simulator = CacheSimulator(policy, capacity=4)
        for page in [0, 1, 100]:
            simulator.access(page)
        assert policy.occupancy(1) == 2
        assert policy.occupancy(2) == 1

    def test_exclusions(self):
        policy = two_domains(hot_quota=1, cold_quota=2)
        simulator = CacheSimulator(policy, capacity=3)
        for page in [0, 100, 101]:
            simulator.access(page)
        victim = policy.choose_victim(4, incoming=102,
                                      exclude=frozenset({100}))
        assert victim == 101

    def test_all_excluded_raises(self):
        policy = two_domains(hot_quota=1, cold_quota=1)
        simulator = CacheSimulator(policy, capacity=2)
        simulator.access(0)
        simulator.access(100)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({0, 100}))

    def test_reset(self):
        policy = two_domains(hot_quota=1, cold_quota=1)
        simulator = CacheSimulator(policy, capacity=2)
        simulator.access(0)
        policy.reset()
        assert len(policy) == 0
        assert policy.occupancy(1) == 0


class TestDomainCacheBound:
    def test_cache_never_outgrows_the_resident_set(self):
        # Regression: the page->domain memo used to grow without bound
        # under churn (one entry per distinct page ever seen). It must
        # stay bounded by residency plus at most the one in-flight
        # incoming page.
        policy = two_domains(hot_quota=2, cold_quota=2)
        simulator = CacheSimulator(policy, capacity=4)
        for page in range(10_000):
            simulator.access(page if page % 3 == 0 else 100 + page)
            assert policy.domain_cache_size() <= len(policy) + 1
        assert policy.domain_cache_size() <= 5

    def test_reset_clears_the_cache(self):
        policy = two_domains(hot_quota=2, cold_quota=2)
        simulator = CacheSimulator(policy, capacity=4)
        for page in [0, 1, 100]:
            simulator.access(page)
        policy.reset()
        assert policy.domain_cache_size() == 0
