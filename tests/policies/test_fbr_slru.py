"""Tests for FBR ([ROBDEV]) and SLRU."""

import pytest

from repro.errors import ConfigurationError, NoEvictableFrameError
from repro.policies import FBRPolicy, LRUPolicy, SLRUPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, eviction_order, hit_ratio


class TestFBRConstruction:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            FBRPolicy(capacity=0)
        with pytest.raises(ConfigurationError):
            FBRPolicy(capacity=10, new_fraction=0.0)
        with pytest.raises(ConfigurationError):
            FBRPolicy(capacity=10, new_fraction=0.6, old_fraction=0.6)
        with pytest.raises(ConfigurationError):
            FBRPolicy(capacity=10, average_count_limit=1.0)


class TestFBRSections:
    def test_admission_enters_new_section(self):
        policy = FBRPolicy(capacity=8)
        drive(policy, [1], capacity=8)
        assert policy.section_of(1) == "new"

    def test_pages_age_through_sections(self):
        policy = FBRPolicy(capacity=8, new_fraction=0.25, old_fraction=0.25)
        simulator = CacheSimulator(policy, 8)
        for page in range(8):
            simulator.access(page)
        # new holds 2, old holds 2, middle the rest; page 0 is oldest.
        assert policy.section_of(0) == "old"
        assert policy.section_of(7) == "new"
        assert policy.section_of(4) == "middle"

    def test_new_section_hit_does_not_count(self):
        """The 'factoring out locality' rule the paper cites."""
        policy = FBRPolicy(capacity=8, new_fraction=0.5)
        simulator = CacheSimulator(policy, 8)
        simulator.access(1)
        simulator.access(1)          # hit in the new section
        simulator.access(1)
        assert policy.reference_count(1) == 1

    def test_old_section_hit_counts(self):
        policy = FBRPolicy(capacity=8, new_fraction=0.25, old_fraction=0.25)
        simulator = CacheSimulator(policy, 8)
        for page in range(8):
            simulator.access(page)
        assert policy.section_of(0) == "old"
        simulator.access(0)          # hit outside the new section
        assert policy.reference_count(0) == 2

    def test_victim_is_least_count_in_old_section(self):
        policy = FBRPolicy(capacity=8, new_fraction=0.25, old_fraction=0.25)
        simulator = CacheSimulator(policy, 8)
        for page in range(8):
            simulator.access(page)
        simulator.access(0)          # count(0)=2, back to new
        for page in range(8):        # re-touch to restore order, 1 stays
            if page != 1:
                simulator.access(page)
        # Page 1 now has count 1 somewhere low in the stack.
        outcome = simulator.access(100)
        assert outcome.evicted == 1

    def test_aging_halves_counts(self):
        policy = FBRPolicy(capacity=4, new_fraction=0.25, old_fraction=0.25,
                           average_count_limit=2.0)
        simulator = CacheSimulator(policy, 4)
        for page in range(4):
            simulator.access(page)
        for _ in range(12):          # rack up counts via old-section hits
            for page in range(4):
                simulator.access(page)
        assert all(policy.reference_count(p) <= 5 for p in range(4))

    def test_discriminates_hot_pages(self, two_pool_trace):
        fbr = hit_ratio(FBRPolicy(capacity=10), two_pool_trace, 10,
                        warmup=500)
        lru = hit_ratio(LRUPolicy(), two_pool_trace, 10, warmup=500)
        assert fbr > lru + 0.03

    def test_exclusions_and_fallback(self):
        policy = FBRPolicy(capacity=4, new_fraction=0.25, old_fraction=0.25)
        drive(policy, [1, 2, 3, 4], capacity=4)
        victim = policy.choose_victim(5, exclude=frozenset({1}))
        assert victim != 1
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(5, exclude=frozenset({1, 2, 3, 4}))

    def test_reset(self):
        policy = FBRPolicy(capacity=4)
        drive(policy, [1, 2, 3], capacity=4)
        policy.reset()
        assert len(policy) == 0
        assert policy.reference_count(1) == 0


class TestSLRU:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            SLRUPolicy(capacity=0)
        with pytest.raises(ConfigurationError):
            SLRUPolicy(capacity=10, protected_fraction=1.0)

    def test_admission_is_probationary(self):
        policy = SLRUPolicy(capacity=8)
        drive(policy, [1], capacity=8)
        assert 1 in policy.probationary_pages

    def test_hit_promotes_to_protected(self):
        policy = SLRUPolicy(capacity=8)
        simulator = CacheSimulator(policy, 8)
        simulator.access(1)
        simulator.access(1)
        assert 1 in policy.protected_pages

    def test_victims_come_from_probationary_first(self):
        policy = SLRUPolicy(capacity=3)
        # 1 is protected (hit); 2, 3 probationary; 2 is the LRU one.
        assert eviction_order(policy, [1, 1, 2, 3, 4], capacity=3) == [2]

    def test_protected_overflow_demotes(self):
        policy = SLRUPolicy(capacity=4, protected_fraction=0.5)
        simulator = CacheSimulator(policy, 4)
        for page in [1, 1, 2, 2, 3, 3]:  # three promotions, cap 2
            simulator.access(page)
        assert len(policy.protected_pages) == 2
        assert 1 in policy.probationary_pages  # demoted back

    def test_scan_resistance(self):
        from repro.stats import SeededRng
        rng = SeededRng(6)
        hot = [rng.randrange(8) for _ in range(3000)]
        scan = list(range(100, 400))
        trace = hot[:1500] + scan + hot[1500:]
        slru = hit_ratio(SLRUPolicy(capacity=16), trace, 16, warmup=500)
        lru = hit_ratio(LRUPolicy(), trace, 16, warmup=500)
        assert slru >= lru

    def test_no_retained_information_contrast_with_lru2(self):
        """A page re-referenced only after eviction is invisible to SLRU
        but recognized by LRU-2's retained history — the structural
        difference the module docstring calls out."""
        from repro.core import LRUKPolicy
        # Page 7 referenced, flushed out by a parade, referenced again,
        # then two more parade pages arrive.
        trace = [7, 101, 102, 103, 104, 7, 105, 106]
        slru = SLRUPolicy(capacity=2)
        slru_sim = drive(slru, trace, capacity=2)
        lruk_sim = drive(LRUKPolicy(k=2), trace, capacity=2)
        # LRU-2 keeps 7 (finite backward 2-distance beats the parade's
        # infinite ones); SLRU's 7 re-entered as merely probationary and
        # ages out again.
        assert lruk_sim.is_resident(7)
        assert not slru_sim.is_resident(7)

    def test_exclusions(self):
        policy = SLRUPolicy(capacity=3)
        drive(policy, [1, 2, 3], capacity=3)
        assert policy.choose_victim(4, exclude=frozenset({1})) == 2

    def test_reset(self):
        policy = SLRUPolicy(capacity=3)
        drive(policy, [1, 1, 2], capacity=3)
        policy.reset()
        assert len(policy) == 0
        assert not policy.protected_pages
