"""Property-based invariants that every policy must satisfy."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import LRUKPolicy
from repro.policies import (
    ARCPolicy,
    A0Policy,
    AgedLFUPolicy,
    BeladyPolicy,
    ClockPolicy,
    FBRPolicy,
    LIRSPolicy,
    FIFOPolicy,
    GClockPolicy,
    LFUPolicy,
    LRDV1Policy,
    LRDV2Policy,
    LRUPolicy,
    MRUPolicy,
    MultiPoolPolicy,
    RandomPolicy,
    SLRUPolicy,
    TwoQPolicy,
    WorkingSetPolicy,
)
from repro.sim import CacheSimulator

from ..conftest import simulate_opt_misses

PAGE_UNIVERSE = 15
CAPACITY_MAX = 6


def build_all_policies(capacity: int, trace):
    """One instance of every policy, ready for the given run."""
    uniform = {page: 1.0 / PAGE_UNIVERSE for page in range(PAGE_UNIVERSE)}
    opt = BeladyPolicy()
    opt.prepare(trace)
    return [
        LRUPolicy(),
        FIFOPolicy(),
        MRUPolicy(),
        RandomPolicy(seed=1),
        ClockPolicy(),
        GClockPolicy(),
        LFUPolicy(),
        AgedLFUPolicy(aging_period=17),
        LRDV1Policy(),
        LRDV2Policy(aging_interval=13, decay=0.5),
        WorkingSetPolicy(window=9),
        A0Policy(uniform),
        opt,
        TwoQPolicy(capacity=capacity),
        ARCPolicy(capacity=capacity),
        SLRUPolicy(capacity=max(2, capacity)),
        FBRPolicy(capacity=max(4, capacity)),
        LIRSPolicy(capacity=max(2, capacity)),
        LRUKPolicy(k=2),
        LRUKPolicy(k=3, correlated_reference_period=2),
        MultiPoolPolicy(domain_of=lambda p: p % 2,
                        quotas={0: max(1, capacity // 2),
                                1: max(1, capacity - capacity // 2)}),
    ]


traces = st.lists(st.integers(min_value=0, max_value=PAGE_UNIVERSE - 1),
                  min_size=1, max_size=80)
capacities = st.integers(min_value=1, max_value=CAPACITY_MAX)


@given(trace=traces, capacity=capacities)
@settings(max_examples=40, deadline=None)
def test_every_policy_respects_capacity_and_residency(trace, capacity):
    for policy in build_all_policies(capacity, trace):
        simulator = CacheSimulator(policy, capacity)
        for page in trace:
            simulator.access(page)
            assert len(simulator.resident_pages) <= capacity
            assert simulator.is_resident(page)
            assert simulator.resident_pages == policy.resident_pages


@given(trace=traces, capacity=capacities)
@settings(max_examples=40, deadline=None)
def test_no_policy_beats_belady(trace, capacity):
    """OPT's miss count lower-bounds every online policy."""
    optimal = simulate_opt_misses(trace, capacity)
    for policy in build_all_policies(capacity, trace):
        simulator = CacheSimulator(policy, capacity)
        for page in trace:
            simulator.access(page)
        assert simulator.counter.misses >= optimal, type(policy).__name__


@given(trace=traces, capacity=capacities)
@settings(max_examples=30, deadline=None)
def test_miss_count_at_least_distinct_pages(trace, capacity):
    """Compulsory misses: every distinct page misses at least once."""
    distinct = len(set(trace))
    for policy in build_all_policies(capacity, trace):
        simulator = CacheSimulator(policy, capacity)
        for page in trace:
            simulator.access(page)
        assert simulator.counter.misses >= min(distinct, len(trace))


@given(trace=traces)
@settings(max_examples=30, deadline=None)
def test_unbounded_buffer_only_compulsory_misses(trace):
    """With capacity >= universe, every policy misses exactly once per page."""
    for policy in build_all_policies(PAGE_UNIVERSE, trace):
        simulator = CacheSimulator(policy, PAGE_UNIVERSE)
        for page in trace:
            simulator.access(page)
        assert simulator.counter.misses == len(set(trace))
        assert simulator.evictions == 0


@given(trace=traces, capacity=capacities)
@settings(max_examples=25, deadline=None)
def test_reset_reproduces_identical_run(trace, capacity):
    for policy in build_all_policies(capacity, trace):
        first = CacheSimulator(policy, capacity)
        for page in trace:
            first.access(page)
        hits_first = first.counter.hits
        policy.reset()
        second = CacheSimulator(policy, capacity)
        for page in trace:
            second.access(page)
        assert second.counter.hits == hits_first, type(policy).__name__
