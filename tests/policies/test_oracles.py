"""Tests for the A0 and Belady (OPT) oracles."""

import pytest

from repro.errors import NoEvictableFrameError, OracleError
from repro.policies import A0Policy, BeladyPolicy, LRUPolicy
from repro.sim import CacheSimulator

from ..conftest import drive, simulate_opt_misses


class TestA0:
    def test_requires_probabilities(self):
        with pytest.raises(OracleError):
            A0Policy({})
        with pytest.raises(OracleError):
            A0Policy({1: -0.5})

    def test_evicts_lowest_probability_page(self):
        policy = A0Policy({1: 0.5, 2: 0.3, 3: 0.2})
        drive(policy, [1, 2, 3], capacity=3)
        assert policy.choose_victim(4) == 3

    def test_keeps_hottest_pages_resident(self):
        probabilities = {p: (0.9 / 3 if p < 3 else 0.1 / 7)
                         for p in range(10)}
        policy = A0Policy(probabilities)
        simulator = CacheSimulator(policy, capacity=4)
        trace = [0, 5, 1, 6, 2, 7, 0, 8, 1, 9, 2, 3, 0, 1, 2]
        for page in trace:
            simulator.access(page)
        assert {0, 1, 2} <= simulator.resident_pages

    def test_unknown_pages_get_probability_zero(self):
        policy = A0Policy({1: 1.0})
        drive(policy, [1, 99], capacity=2)
        # 99 has beta=0 and must be the victim.
        assert policy.choose_victim(3) == 99

    def test_exclusions(self):
        policy = A0Policy({1: 0.6, 2: 0.4})
        drive(policy, [1, 2], capacity=2)
        assert policy.choose_victim(3, exclude=frozenset({2})) == 1

    def test_readmission_after_eviction_is_consistent(self):
        policy = A0Policy({1: 0.5, 2: 0.3, 3: 0.2})
        simulator = CacheSimulator(policy, capacity=2)
        for page in [1, 2, 3, 2, 3, 1]:
            simulator.access(page)
        assert simulator.is_resident(1)


class TestBelady:
    def test_requires_prepare(self):
        policy = BeladyPolicy()
        with pytest.raises(OracleError):
            policy.on_admit(1, 1)

    def test_detects_trace_mismatch(self):
        policy = BeladyPolicy()
        policy.prepare([1, 2, 3])
        with pytest.raises(OracleError):
            policy.on_admit(9, 1)

    def test_textbook_example(self):
        # Classic OPT example: with capacity 3 and this string, OPT takes
        # exactly the brute-force miss count.
        trace = [7, 0, 1, 2, 0, 3, 0, 4, 2, 3, 0, 3, 2, 1, 2, 0, 1, 7, 0, 1]
        policy = BeladyPolicy()
        policy.prepare(trace)
        simulator = drive(policy, trace, capacity=3)
        assert simulator.counter.misses == simulate_opt_misses(trace, 3)

    def test_never_worse_than_lru_on_fixed_traces(self):
        from repro.stats import SeededRng
        rng = SeededRng(7)
        for _ in range(20):
            trace = [rng.randrange(10) for _ in range(200)]
            capacity = 1 + rng.randrange(5)
            opt = BeladyPolicy()
            opt.prepare(trace)
            opt_misses = drive(opt, trace, capacity).counter.misses
            lru_misses = drive(LRUPolicy(), trace, capacity).counter.misses
            assert opt_misses <= lru_misses

    def test_matches_independent_opt_simulation(self):
        from repro.stats import SeededRng
        rng = SeededRng(11)
        for _ in range(10):
            trace = [rng.randrange(8) for _ in range(150)]
            capacity = 1 + rng.randrange(4)
            policy = BeladyPolicy()
            policy.prepare(trace)
            misses = drive(policy, trace, capacity).counter.misses
            assert misses == simulate_opt_misses(trace, capacity)

    def test_evicts_never_used_again_first(self):
        trace = [1, 2, 3, 4, 1, 2, 3]
        policy = BeladyPolicy()
        policy.prepare(trace)
        simulator = CacheSimulator(policy, capacity=3)
        for page in trace[:3]:
            simulator.access(page)
        outcome = simulator.access(4)  # 4 is never reused; 1,2,3 are
        # The victim must be 4's best competitor... OPT may evict any page
        # whose next use is farthest: that is page 3 (used at t=7).
        assert outcome.evicted == 3

    def test_all_excluded_raises(self):
        policy = BeladyPolicy()
        policy.prepare([1, 2, 3])
        drive(policy, [1, 2], capacity=2)
        with pytest.raises(NoEvictableFrameError):
            policy.choose_victim(3, exclude=frozenset({1, 2}))

    def test_reset_allows_identical_rerun(self):
        trace = [1, 2, 3, 1, 4, 2]
        policy = BeladyPolicy()
        policy.prepare(trace)
        first = drive(policy, trace, capacity=2).counter.misses
        policy.reset()
        second = drive(policy, trace, capacity=2).counter.misses
        assert first == second
