"""Tests for the one-shot reproduction report."""

from repro.cli import main
from repro.experiments.report import generate_report


class TestGenerateReport:
    def test_contains_all_sections(self):
        report = generate_report(table_scale=0.2, oltp_scale=0.02,
                                 repetitions=1)
        assert "# Reproduction report" in report
        assert "## Table 4.1" in report
        assert "## Table 4.2" in report
        assert "## Table 4.3" in report
        assert "trace characterization" in report
        assert "Generated in" in report

    def test_progress_callback(self):
        lines = []
        generate_report(table_scale=0.2, oltp_scale=0.02, repetitions=1,
                        progress=lines.append)
        assert any("Table 4.1" in line for line in lines)

    def test_paper_values_embedded(self):
        report = generate_report(table_scale=0.2, oltp_scale=0.02,
                                 repetitions=1)
        assert "LRU-1 (paper)" in report
        assert "0.459" in report  # paper Table 4.1 B=100 LRU-2 value


class TestReportCli:
    def test_report_to_file(self, tmp_path, capsys):
        output = tmp_path / "report.md"
        code = main(["report", "--table-scale", "0.2",
                     "--oltp-scale", "0.02", "--repetitions", "1",
                     "--output", str(output)])
        assert code == 0
        text = output.read_text()
        assert "## Table 4.3" in text

    def test_report_to_stdout(self, capsys):
        code = main(["report", "--table-scale", "0.2",
                     "--oltp-scale", "0.02", "--repetitions", "1"])
        assert code == 0
        assert "# Reproduction report" in capsys.readouterr().out
