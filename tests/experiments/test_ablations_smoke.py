"""Smoke tests for the ablation functions at reduced sizes.

The full ablations run in ``benchmarks/``; here each function executes at
the smallest meaningful parameters so a regression in their plumbing (not
their science) is caught by the fast suite.
"""

import pytest

from repro.experiments.ablations import (
    ablation_adaptivity,
    ablation_analytic_cross_check,
    ablation_crp_sweep,
    ablation_k_sweep,
    ablation_multipool,
    ablation_rip_sweep,
    ablation_scaling,
    ablation_scan_swamping,
    ablation_victim_structure,
)


class TestAblationSmoke:
    def test_k_sweep(self):
        table = ablation_k_sweep(ks=(1, 2), capacity=60, scale=0.5)
        assert table.column("K") == [1, 2, "A0"]
        ratios = table.column("hit ratio")
        assert ratios[1] > ratios[0]  # K=2 beats K=1 even at tiny scale

    def test_crp_sweep(self):
        table = ablation_crp_sweep(crps=(0, 4), capacity=60,
                                   references=8000)
        assert len(table.rows) == 2
        correlated = dict(zip(table.column("CRP"),
                              table.column("correlated refs")))
        assert correlated[4] > correlated[0] == 0

    def test_rip_sweep(self):
        table = ablation_rip_sweep(rips=(200, None), scale=0.4)
        blocks = table.column("history blocks")
        assert blocks[0] < blocks[1]

    def test_adaptivity(self):
        table = ablation_adaptivity(policy_names=("lru", "lfu"),
                                    epochs=2, epoch_length=4000,
                                    capacity=60)
        assert table.columns == ["policy", "epoch 0", "epoch 1"]
        rows = {row[0]: row[1:] for row in table.rows}
        assert rows["LFU"][1] < rows["LFU"][0]  # LFU degrades after jump

    def test_scan_swamping(self):
        table = ablation_scan_swamping(capacity=300, references=15_000)
        degradation = dict(zip(table.column("policy"),
                               table.column("degradation")))
        assert degradation["LRU-1"] > degradation["LRU-2"]

    def test_scaling(self):
        table = ablation_scaling(size_factors=(1, 2))
        lru2 = table.column("LRU-2")
        assert abs(lru2[0] - lru2[1]) < 0.05

    def test_analytic(self):
        table = ablation_analytic_cross_check(capacities=(50,), n=200)
        row = table.rows[0]
        assert row[1] == pytest.approx(row[2], abs=0.05)

    def test_multipool(self):
        table = ablation_multipool(capacity=120, scale=1.0)
        ratios = dict(zip(table.column("policy"),
                          table.column("hit ratio")))
        assert ratios["LRU-2"] > ratios["multi-pool (mistuned)"]

    def test_victim_structure(self):
        table = ablation_victim_structure(capacities=(50,),
                                          references=4000)
        assert table.rows[0][3] > 0  # a positive speedup number exists
