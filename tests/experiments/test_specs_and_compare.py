"""Tests for the experiment specs, published data, and comparison tools."""

import pytest

from repro.errors import ConfigurationError
from repro.experiments import (
    PAPER_TABLE_4_1,
    PAPER_TABLE_4_2,
    PAPER_TABLE_4_3,
    comparison_table,
    shape_check,
    table_4_1_spec,
    table_4_2_spec,
    table_4_3_spec,
)
from repro.experiments.paper_data import PAPER_TRACE_STATS
from repro.experiments.table41 import TABLE_4_1_CAPACITIES
from repro.experiments.table42 import TABLE_4_2_CAPACITIES
from repro.experiments.table43 import TABLE_4_3_CAPACITIES
from repro.sim import run_experiment


class TestPaperData:
    def test_table_41_shape(self):
        assert len(PAPER_TABLE_4_1) == 13
        assert [row.capacity for row in PAPER_TABLE_4_1] == list(
            TABLE_4_1_CAPACITIES)
        for row in PAPER_TABLE_4_1:
            assert set(row.hit_ratios) == {"LRU-1", "LRU-2", "LRU-3", "A0"}
            assert row.equi_effective > 1.0

    def test_table_42_shape(self):
        assert len(PAPER_TABLE_4_2) == 11
        assert [row.capacity for row in PAPER_TABLE_4_2] == list(
            TABLE_4_2_CAPACITIES)

    def test_table_43_shape(self):
        assert len(PAPER_TABLE_4_3) == 14
        assert [row.capacity for row in PAPER_TABLE_4_3] == list(
            TABLE_4_3_CAPACITIES)
        for row in PAPER_TABLE_4_3:
            assert row.ratio("LRU-2") >= row.ratio("LRU-1")

    def test_published_hit_ratios_are_probabilities(self):
        for table in (PAPER_TABLE_4_1, PAPER_TABLE_4_2, PAPER_TABLE_4_3):
            for row in table:
                for value in row.hit_ratios.values():
                    assert 0.0 <= value <= 1.0

    def test_trace_stats_constants(self):
        assert PAPER_TRACE_STATS["references"] == 470_000
        assert PAPER_TRACE_STATS["five_minute_pages"] == 1400


class TestSpecBuilders:
    def test_table_41_spec_defaults(self):
        spec = table_4_1_spec()
        assert spec.warmup == 1000          # 10 * N1
        assert spec.measured == 3000        # 30 * N1
        assert [s.label for s in spec.policies] == [
            "LRU-1", "LRU-2", "LRU-3", "A0"]
        assert spec.equi_effective == ("LRU-1", "LRU-2")

    def test_table_41_size_factor(self):
        spec = table_4_1_spec(size_factor=3, capacities=[300])
        assert spec.workload.n1 == 300
        assert spec.workload.n2 == 30_000
        assert spec.warmup == 3000

    def test_table_42_spec_policies(self):
        spec = table_4_2_spec()
        assert [s.label for s in spec.policies] == ["LRU-1", "LRU-2", "A0"]

    def test_table_43_scaled_lengths(self):
        spec = table_4_3_spec(scale=0.1)
        assert spec.warmup + spec.measured == 47_000

    def test_invalid_scales_rejected(self):
        with pytest.raises(ConfigurationError):
            table_4_1_spec(scale=0)
        with pytest.raises(ConfigurationError):
            table_4_3_spec(scale=-1)


class TestComparisonAndShape:
    @pytest.fixture(scope="class")
    def quick_result(self):
        spec = table_4_1_spec(scale=0.5, capacities=[60, 100],
                              repetitions=1, include_lru3=False,
                              include_equi_effective=False)
        return run_experiment(spec)

    def test_comparison_table_pairs_columns(self, quick_result):
        table = comparison_table(quick_result, PAPER_TABLE_4_1)
        assert "LRU-1 (paper)" in table.columns
        assert "LRU-1 (ours)" in table.columns
        rendered = table.render()
        assert "0.140" in rendered  # the published B=60 LRU-1 value

    def test_shape_check_passes_on_real_result(self, quick_result):
        check = shape_check(quick_result, ordering=["LRU-1", "LRU-2"])
        assert check.passed, check.failures

    def test_shape_check_detects_violations(self, quick_result):
        check = shape_check(quick_result, ordering=["LRU-2", "LRU-1"])
        assert not check.passed
        assert check.failures

    def test_shape_check_min_gap(self, quick_result):
        impossible = shape_check(quick_result,
                                 ordering=["LRU-1", "LRU-2"],
                                 min_gap_at=(100, "LRU-1", "LRU-2", 0.9))
        assert not impossible.passed

    def test_shape_check_unknown_capacity_rejected(self, quick_result):
        with pytest.raises(ConfigurationError):
            shape_check(quick_result, ordering=["LRU-1", "LRU-2"],
                        min_gap_at=(999, "LRU-1", "LRU-2", 0.1))
