"""Property-based stress tests for the buffer pool with pins and writes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.buffer import BufferPool
from repro.core import LRUKPolicy
from repro.errors import NoEvictableFrameError
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk
from repro.types import AccessKind

PAGES = 12
CAPACITY = 4

# An operation is (op, page): fetch-read, fetch-write, unpin, flush.
operations = st.lists(
    st.tuples(st.sampled_from(["read", "write", "unpin", "flush"]),
              st.integers(min_value=0, max_value=PAGES - 1)),
    min_size=1, max_size=120)


def build_pool(policy):
    disk = SimulatedDisk()
    disk.allocate_many(PAGES)
    return disk, BufferPool(disk, policy, CAPACITY)


def run_ops(pool, ops):
    """Apply operations, tracking our own pin model."""
    pins = {}
    for op, page in ops:
        if op in ("read", "write"):
            kind = AccessKind.WRITE if op == "write" else AccessKind.READ
            try:
                pool.fetch(page, pin=True, kind=kind)
            except NoEvictableFrameError:
                # Legal refusal: everything is pinned. Drop one pin to
                # keep the sequence progressing.
                victim = next(iter(pins))
                pool.unpin(victim)
                pins[victim] -= 1
                if pins[victim] == 0:
                    del pins[victim]
                continue
            pins[page] = pins.get(page, 0) + 1
        elif op == "unpin":
            if pins.get(page):
                pool.unpin(page)
                pins[page] -= 1
                if pins[page] == 0:
                    del pins[page]
        elif op == "flush":
            if pool.is_resident(page):
                pool.flush(page)
    return pins


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_pinned_pages_survive_everything(ops):
    disk, pool = build_pool(LRUPolicy())
    pins = run_ops(pool, ops)
    # Every page our model believes is pinned must be resident with the
    # same pin count.
    for page, count in pins.items():
        assert pool.is_resident(page)
        assert pool.pin_count(page) == count


@given(ops=operations)
@settings(max_examples=60, deadline=None)
def test_capacity_and_page_table_consistency(ops):
    disk, pool = build_pool(LRUKPolicy(k=2))
    run_ops(pool, ops)
    resident = pool.resident_pages
    assert len(resident) <= CAPACITY
    for page in resident:
        frame = pool.frame_of(page)
        assert frame.page is not None
        assert frame.page.page_id == page
    # Policy residency mirrors the pool's.
    assert pool.policy.resident_pages == resident


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_flush_all_then_disk_matches_buffer(ops):
    disk, pool = build_pool(LRUPolicy())
    run_ops(pool, ops)
    pool.flush_all()
    for page in pool.resident_pages:
        frame = pool.frame_of(page)
        assert not frame.dirty
        assert disk.read(page).payload == frame.page.payload


@given(ops=operations)
@settings(max_examples=40, deadline=None)
def test_physical_io_accounting(ops):
    disk, pool = build_pool(LRUPolicy())
    run_ops(pool, ops)
    # Reads: one per miss. Writes: dirty evictions + explicit flushes.
    assert disk.stats.reads == pool.stats.misses
    assert disk.stats.writes == (pool.stats.dirty_evictions
                                 + pool.stats.flushes)
