"""Tests for the full buffer manager."""

import pytest

from repro.buffer import BufferPool, TraceRecorder
from repro.buffer.frame import Frame
from repro.core import LRUKPolicy
from repro.errors import (
    ConfigurationError,
    InvalidPinError,
    NoEvictableFrameError,
    PageNotResidentError,
)
from repro.policies import LRUPolicy
from repro.storage import SimulatedDisk
from repro.types import AccessKind


def make_pool(capacity=3, policy=None, observer=None):
    disk = SimulatedDisk()
    disk.allocate_many(20)
    pool = BufferPool(disk, policy if policy is not None else LRUPolicy(),
                      capacity, observer=observer)
    return disk, pool


class TestFrame:
    def test_pin_unpin_balance(self):
        frame = Frame(0)
        frame.pin()
        frame.pin()
        frame.unpin()
        frame.unpin(dirty=True)
        assert frame.pin_count == 0
        assert frame.dirty

    def test_over_unpin_rejected(self):
        frame = Frame(0)
        with pytest.raises(InvalidPinError):
            frame.unpin()


class TestFetch:
    def test_miss_then_hit(self):
        disk, pool = make_pool()
        pool.fetch(0, pin=False)
        pool.fetch(0, pin=False)
        assert pool.stats.misses == 1
        assert pool.stats.hits == 1
        assert disk.stats.reads == 1

    def test_capacity_validated(self):
        disk = SimulatedDisk()
        with pytest.raises(ConfigurationError):
            BufferPool(disk, LRUPolicy(), capacity=0)

    def test_eviction_when_full(self):
        disk, pool = make_pool(capacity=2)
        for page in [0, 1, 2]:
            pool.fetch(page, pin=False)
        assert pool.stats.evictions == 1
        assert not pool.is_resident(0)

    def test_pinned_page_never_evicted(self):
        disk, pool = make_pool(capacity=2)
        pool.fetch(0, pin=True)           # pinned
        pool.fetch(1, pin=False)
        pool.fetch(2, pin=False)          # must evict 1, not 0
        assert pool.is_resident(0)
        assert not pool.is_resident(1)

    def test_all_pinned_raises(self):
        disk, pool = make_pool(capacity=2)
        pool.fetch(0, pin=True)
        pool.fetch(1, pin=True)
        with pytest.raises(NoEvictableFrameError):
            pool.fetch(2)

    def test_unpin_restores_evictability(self):
        disk, pool = make_pool(capacity=2)
        pool.fetch(0, pin=True)
        pool.fetch(1, pin=True)
        pool.unpin(0)
        pool.fetch(2, pin=False)
        assert not pool.is_resident(0)

    def test_unpin_nonresident_rejected(self):
        disk, pool = make_pool()
        with pytest.raises(PageNotResidentError):
            pool.unpin(5)


class TestDirtyWriteback:
    def test_dirty_eviction_writes_back(self):
        disk, pool = make_pool(capacity=1)
        pool.fetch(0, pin=True, kind=AccessKind.WRITE)
        pool.write_payload(0, b"modified")
        pool.unpin(0, dirty=True)
        pool.fetch(1, pin=False)  # evicts dirty page 0
        assert pool.stats.dirty_evictions == 1
        assert disk.read(0).payload == b"modified"

    def test_clean_eviction_skips_write(self):
        disk, pool = make_pool(capacity=1)
        pool.fetch(0, pin=False)
        writes_before = disk.stats.writes
        pool.fetch(1, pin=False)
        assert disk.stats.writes == writes_before

    def test_flush_single_page(self):
        disk, pool = make_pool()
        pool.fetch(0, pin=True, kind=AccessKind.WRITE)
        pool.write_payload(0, b"flushed")
        pool.unpin(0, dirty=True)
        assert pool.flush(0) is True
        assert pool.flush(0) is False     # now clean
        assert disk.read(0).payload == b"flushed"

    def test_flush_all(self):
        disk, pool = make_pool(capacity=3)
        for page in range(3):
            pool.fetch(page, pin=True, kind=AccessKind.WRITE)
            pool.write_payload(page, f"page-{page}".encode())
            pool.unpin(page, dirty=True)
        assert pool.flush_all() == 3
        for page in range(3):
            assert disk.read(page).payload == f"page-{page}".encode()

    def test_write_fetch_marks_dirty(self):
        disk, pool = make_pool(capacity=1)
        pool.fetch(0, pin=False, kind=AccessKind.WRITE)
        pool.fetch(1, pin=False)
        assert pool.stats.dirty_evictions == 1


class TestEvictPage:
    def test_forced_eviction(self):
        disk, pool = make_pool()
        pool.fetch(0, pin=False)
        pool.evict_page(0)
        assert not pool.is_resident(0)
        # The freed frame is reused without an eviction.
        pool.fetch(1, pin=False)
        assert pool.stats.evictions == 1  # only the forced one

    def test_pinned_page_refuses_forced_eviction(self):
        disk, pool = make_pool()
        pool.fetch(0, pin=True)
        with pytest.raises(NoEvictableFrameError):
            pool.evict_page(0)


class TestObserverAndContext:
    def test_observer_sees_every_reference(self):
        recorder = TraceRecorder()
        disk, pool = make_pool(observer=recorder)
        pool.fetch(0, pin=False)
        pool.fetch(0, pin=False, kind=AccessKind.WRITE)
        assert recorder.pages() == [0, 0]
        assert recorder.references[1].is_write

    def test_pinned_page_context_manager(self):
        disk, pool = make_pool()
        with pool.pinned_page(0) as frame:
            assert frame.pin_count == 1
            assert pool.pin_count(0) == 1
        assert pool.pin_count(0) == 0

    def test_works_with_lruk_policy(self):
        disk, pool = make_pool(capacity=2, policy=LRUKPolicy(k=2))
        for page in [0, 1, 0, 1, 2, 0]:
            pool.fetch(page, pin=False)
        # 0 and 1 have two references; 2 had infinite backward distance
        # and was evicted on 0's return.
        assert pool.is_resident(0)
        assert not pool.is_resident(2)

    def test_stats_hit_ratio(self):
        disk, pool = make_pool()
        pool.fetch(0, pin=False)
        pool.fetch(0, pin=False)
        pool.fetch(1, pin=False)
        assert pool.stats.hit_ratio == pytest.approx(1 / 3)
